/**
 * @file
 * Integration tests over the assembled system: the paper's headline
 * orderings must emerge from end-to-end runs, statistics must be
 * self-consistent, and runs must be reproducible.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/system.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

SimulationResult
runProfile(Scheme scheme, const char *bench, std::uint64_t instr = 40'000,
           unsigned entries = 32, std::uint64_t seed = 7)
{
    const BenchmarkProfile &p = profileByName(bench);
    SystemConfig cfg = SecPbSystem::configFor(scheme, p);
    cfg.secpb.numEntries = entries;
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(p, instr, seed);
    return sys.run(gen);
}

} // namespace

TEST(System, SchemeOrderingOnWriteHeavyWorkload)
{
    // Table IV's ordering: BBB <= COBCM <= OBCM <= BCM <= CM <= M <= NoGap
    // (allow tiny noise between adjacent lazy schemes).
    const char *bench = "gamess";
    const auto bbb = runProfile(Scheme::Bbb, bench).execTicks;
    const auto cobcm = runProfile(Scheme::Cobcm, bench).execTicks;
    const auto obcm = runProfile(Scheme::Obcm, bench).execTicks;
    const auto bcm = runProfile(Scheme::Bcm, bench).execTicks;
    const auto cm = runProfile(Scheme::Cm, bench).execTicks;
    const auto m = runProfile(Scheme::M, bench).execTicks;
    const auto nogap = runProfile(Scheme::NoGap, bench).execTicks;

    EXPECT_LE(bbb, cobcm);
    EXPECT_LE(static_cast<double>(cobcm), obcm * 1.05);
    EXPECT_LE(static_cast<double>(obcm), bcm * 1.02);
    EXPECT_LT(bcm, cm);     // the big BMT-on-critical-path jump
    EXPECT_LE(static_cast<double>(cm), m * 1.02);
    EXPECT_LT(m, nogap);    // per-store MAC
    // The BCM -> CM jump dwarfs the CM -> M one (Section VI-A).
    EXPECT_GT(cm - bcm, (m - cm) * 4);
}

TEST(System, CobcmNearlyMatchesBbb)
{
    // The headline result: COBCM within a few percent of insecure BBB.
    for (const char *bench : {"sjeng", "omnetpp", "h264ref"}) {
        const auto bbb = runProfile(Scheme::Bbb, bench).execTicks;
        const auto cobcm = runProfile(Scheme::Cobcm, bench).execTicks;
        EXPECT_LT(static_cast<double>(cobcm) / bbb, 1.05) << bench;
    }
}

TEST(System, GamessAnchorsReproduce)
{
    // Section VI-B: gamess PPTI ~47.4, NWPE ~2.1, NoGap IPC ~0.13.
    SimulationResult r = runProfile(Scheme::NoGap, "gamess", 100'000);
    EXPECT_NEAR(r.ppti, 47.4, 8.0);
    EXPECT_NEAR(r.nwpe, 2.1, 0.6);
    EXPECT_NEAR(r.ipc, 0.12, 0.05);
}

TEST(System, PovrayNwpeAnchor)
{
    SimulationResult r = runProfile(Scheme::Cm, "povray", 100'000);
    EXPECT_NEAR(r.nwpe, 17.6, 6.0);
}

TEST(System, RunsAreReproducible)
{
    const auto a = runProfile(Scheme::Cm, "gcc", 30'000, 32, 9);
    const auto b = runProfile(Scheme::Cm, "gcc", 30'000, 32, 9);
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.persists, b.persists);
    EXPECT_EQ(a.bmtRootUpdates, b.bmtRootUpdates);
}

TEST(System, LargerSecPbReducesCmOverhead)
{
    // Figure 7's shape on a capacity-sensitive workload.
    const auto small = runProfile(Scheme::Cm, "gobmk", 60'000, 8);
    const auto big = runProfile(Scheme::Cm, "gobmk", 60'000, 128);
    const auto base_small = runProfile(Scheme::Bbb, "gobmk", 60'000, 8);
    const auto base_big = runProfile(Scheme::Bbb, "gobmk", 60'000, 128);
    const double r_small =
        static_cast<double>(small.execTicks) / base_small.execTicks;
    const double r_big =
        static_cast<double>(big.execTicks) / base_big.execTicks;
    EXPECT_LT(r_big, r_small);
}

TEST(System, CoalescingReducesBmtUpdatesVsWriteThrough)
{
    // Figure 8: all SecPB schemes perform far fewer root updates than
    // sec_wt, which updates per store.
    const auto wt = runProfile(Scheme::SecWt, "gcc", 40'000);
    const auto cm = runProfile(Scheme::Cm, "gcc", 40'000);
    EXPECT_LT(cm.bmtRootUpdates, wt.bmtRootUpdates / 3);
}

TEST(System, BmfReducesCmOverhead)
{
    // Figure 9: height reduction helps the eager CM scheme.
    const BenchmarkProfile &p = profileByName("gamess");
    auto run_bmf = [&p](BmfMode bmf) {
        SystemConfig cfg = SecPbSystem::configFor(Scheme::Cm, p);
        cfg.walker.bmfMode = bmf;
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(p, 40'000, 7);
        return sys.run(gen).execTicks;
    };
    const auto full = run_bmf(BmfMode::None);
    const auto dbmf = run_bmf(BmfMode::Dbmf);
    const auto sbmf = run_bmf(BmfMode::Sbmf);
    EXPECT_LT(dbmf, full);
    EXPECT_LT(sbmf, full);
    EXPECT_LT(dbmf, sbmf);  // 2 levels beat 5
}

TEST(System, StatsAreSelfConsistent)
{
    SimulationResult r = runProfile(Scheme::Cobcm, "astar", 50'000);
    EXPECT_GT(r.instructions, 49'000u);
    EXPECT_GT(r.persists, 0u);
    EXPECT_GE(r.persists, r.allocations);
    EXPECT_NEAR(r.ppti, 1000.0 * r.persists / r.instructions, 1e-9);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LE(r.ipc, 4.0);
    EXPECT_GE(r.ctrCacheHitRate, 0.0);
    EXPECT_LE(r.ctrCacheHitRate, 1.0);
}

TEST(System, StatsDumpMentionsAllSubsystems)
{
    SecPbSystem sys;
    std::ostringstream os;
    sys.dumpStats(os);
    const std::string text = os.str();
    for (const char *needle :
         {"system.secpb.", "system.pcm.", "system.wpq.", "system.bmt.",
          "system.cpu.", "system.crypto.", "system.ctr_cache.",
          "system.store_buffer."})
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
}

TEST(System, SpIsSlowerThanAnySecPbScheme)
{
    const auto sp = runProfile(Scheme::Sp, "gcc", 40'000).execTicks;
    const auto cm = runProfile(Scheme::Cm, "gcc", 40'000).execTicks;
    const auto cobcm = runProfile(Scheme::Cobcm, "gcc", 40'000).execTicks;
    EXPECT_GT(sp, cm);
    EXPECT_GT(sp, cobcm);
}

TEST(System, DeadlockDetectionPanicsInsteadOfHanging)
{
    // A system with a generator that was never started has no events;
    // run() must panic rather than spin.
    SecPbSystem sys;
    ScriptedGenerator empty_gen;
    // An empty generator finishes immediately -- not a deadlock.
    SimulationResult r = sys.run(empty_gen);
    EXPECT_EQ(r.instructions, 0u);
}
