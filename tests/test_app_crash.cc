/**
 * @file
 * Tests for the application-crash handling policies of Section III-B:
 * drain-process (ASID-tagged entries, per-process isolation) versus
 * drain-all (the paper's choice).
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

SystemConfig
smallCfg()
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Cobcm;
    cfg.secpb.numEntries = 16;
    cfg.pmDataBytes = 1ULL << 30;
    return cfg;
}

/** Two processes write to disjoint regions. */
void
runTwoProcesses(SecPbSystem &sys)
{
    ScriptedGenerator gen;
    for (int i = 0; i < 5; ++i) {
        gen.store(static_cast<Addr>(i) * BlockSize, 0xA000 + i, /*asid=*/1);
        gen.store(0x800000 + static_cast<Addr>(i) * BlockSize, 0xB000 + i,
                  /*asid=*/2);
    }
    sys.run(gen);
}

} // namespace

TEST(AppCrash, DrainProcessDrainsOnlyTheVictim)
{
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    const std::size_t before = sys.secpb().occupancy();
    ASSERT_EQ(before, 10u);

    CrashWork w = sys.secpb().applicationCrash(
        1, SecPb::AppCrashPolicy::DrainProcess);
    EXPECT_EQ(w.entriesDrained, 5u);
    EXPECT_EQ(sys.secpb().occupancy(), 5u);

    // Process 1's data is persisted and recoverable...
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(sys.pm().hasData(static_cast<Addr>(i) * BlockSize));
    // ...process 2's entries remain resident (coalescing preserved).
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(
            sys.pm().hasData(0x800000 + static_cast<Addr>(i) * BlockSize));
}

TEST(AppCrash, DrainAllIgnoresAsid)
{
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    CrashWork w = sys.secpb().applicationCrash(
        1, SecPb::AppCrashPolicy::DrainAll);
    EXPECT_EQ(w.entriesDrained, 10u);
    EXPECT_TRUE(sys.secpb().empty());
}

TEST(AppCrash, DrainedProcessDataVerifies)
{
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    sys.secpb().applicationCrash(1, SecPb::AppCrashPolicy::DrainProcess);

    // Verify only the victim's blocks: tuple-complete and decryptable.
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport report;
    for (int i = 0; i < 5; ++i) {
        const Addr a = static_cast<Addr>(i) * BlockSize;
        const BlockData expected = sys.oracle().blockContent(a);
        verifier.verifyBlock(sys.pm(), sys.tree(), a, &expected, report);
    }
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.blocksChecked, 5u);
}

TEST(AppCrash, SurvivorContinuesAndFullCrashStillRecovers)
{
    // After a drain-process app crash, the machine keeps running; a
    // later system crash must still recover everything.
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    sys.secpb().applicationCrash(1, SecPb::AppCrashPolicy::DrainProcess);

    // Process 2 keeps writing.
    for (int i = 5; i < 8; ++i)
        sys.storeBuffer().tryPush(
            0x800000 + static_cast<Addr>(i) * BlockSize, 0xB000 + i, 2);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);

    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
}

TEST(AppCrash, DrainProcessOnEagerScheme)
{
    // NoGap entries are tuple-complete already; drain-process just moves
    // them out with no late work.
    SystemConfig cfg = smallCfg();
    cfg.scheme = Scheme::NoGap;
    SecPbSystem sys(cfg);
    runTwoProcesses(sys);
    CrashWork w = sys.secpb().applicationCrash(
        2, SecPb::AppCrashPolicy::DrainProcess);
    EXPECT_EQ(w.entriesDrained, 5u);
    EXPECT_EQ(w.otpsGenerated, 0u);
    EXPECT_EQ(w.bmtRootUpdates, 0u);
}

TEST(AppCrash, UnknownAsidDrainsNothing)
{
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    CrashWork w = sys.secpb().applicationCrash(
        7, SecPb::AppCrashPolicy::DrainProcess);
    EXPECT_EQ(w.entriesDrained, 0u);
    EXPECT_EQ(sys.secpb().occupancy(), 10u);
}

TEST(AppCrash, CrossAsidCoalescingKeepsAllocatorTag)
{
    // A block allocated by process 1 and later written by process 2
    // coalesces into the same entry, which keeps the allocator's ASID:
    // process 2's crash does not drain it, process 1's does -- and the
    // drain carries process 2's coalesced value with it.
    SecPbSystem sys(smallCfg());
    ScriptedGenerator gen;
    gen.store(0x0, 0xAAAA, /*asid=*/1);
    gen.store(0x8, 0xBBBB, /*asid=*/2);  // same block, different process
    sys.run(gen);
    ASSERT_EQ(sys.secpb().occupancy(), 1u);

    CrashWork w2 = sys.secpb().applicationCrash(
        2, SecPb::AppCrashPolicy::DrainProcess);
    EXPECT_EQ(w2.entriesDrained, 0u);
    EXPECT_EQ(sys.secpb().occupancy(), 1u);

    CrashWork w1 = sys.secpb().applicationCrash(
        1, SecPb::AppCrashPolicy::DrainProcess);
    EXPECT_EQ(w1.entriesDrained, 1u);
    EXPECT_TRUE(sys.secpb().empty());
    ASSERT_TRUE(sys.pm().hasData(0x0));

    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport report;
    const BlockData expected = sys.oracle().blockContent(0x0);
    verifier.verifyBlock(sys.pm(), sys.tree(), 0x0, &expected, report);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(blockWord(expected, 1), 0xBBBBu);
}

TEST(AppCrash, SequentialProcessCrashesEmptyTheBuffer)
{
    // Three processes with resident entries; crash them one by one with
    // DrainProcess. Each crash drains exactly its own entries, and the
    // buffer ends empty with every block recoverable.
    SecPbSystem sys(smallCfg());
    ScriptedGenerator gen;
    for (int i = 0; i < 3; ++i)
        for (std::uint32_t asid = 1; asid <= 3; ++asid)
            gen.store((asid * 0x100000ULL) +
                          static_cast<Addr>(i) * BlockSize,
                      asid * 0x1000 + i, asid);
    sys.run(gen);
    ASSERT_EQ(sys.secpb().occupancy(), 9u);

    for (std::uint32_t asid = 1; asid <= 3; ++asid) {
        CrashWork w = sys.secpb().applicationCrash(
            asid, SecPb::AppCrashPolicy::DrainProcess);
        EXPECT_EQ(w.entriesDrained, 3u) << "asid " << asid;
        EXPECT_EQ(sys.secpb().occupancy(), 3u * (3 - asid));
    }
    EXPECT_TRUE(sys.secpb().empty());

    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.blocksChecked, 9u);
}

TEST(AppCrash, DrainAllWithManyAsidsRecoversEverything)
{
    // 5 ASIDs x 2 blocks = 10 residents, below the 12-entry high
    // watermark so no background drain steals entries mid-test.
    SecPbSystem sys(smallCfg());
    ScriptedGenerator gen;
    for (std::uint32_t asid = 1; asid <= 5; ++asid)
        for (int i = 0; i < 2; ++i)
            gen.store((asid * 0x200000ULL) +
                          static_cast<Addr>(i) * BlockSize,
                      asid + i, asid);
    sys.run(gen);
    const std::size_t resident = sys.secpb().occupancy();
    ASSERT_GT(resident, 0u);

    CrashWork w = sys.secpb().applicationCrash(
        3, SecPb::AppCrashPolicy::DrainAll);
    EXPECT_EQ(w.entriesDrained, resident);
    EXPECT_TRUE(sys.secpb().empty());

    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport r =
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle());
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.blocksChecked, 10u);
}
