/**
 * @file
 * Tests for the application-crash handling policies of Section III-B:
 * drain-process (ASID-tagged entries, per-process isolation) versus
 * drain-all (the paper's choice).
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

SystemConfig
smallCfg()
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Cobcm;
    cfg.secpb.numEntries = 16;
    cfg.pmDataBytes = 1ULL << 30;
    return cfg;
}

/** Two processes write to disjoint regions. */
void
runTwoProcesses(SecPbSystem &sys)
{
    ScriptedGenerator gen;
    for (int i = 0; i < 5; ++i) {
        gen.store(static_cast<Addr>(i) * BlockSize, 0xA000 + i, /*asid=*/1);
        gen.store(0x800000 + static_cast<Addr>(i) * BlockSize, 0xB000 + i,
                  /*asid=*/2);
    }
    sys.run(gen);
}

} // namespace

TEST(AppCrash, DrainProcessDrainsOnlyTheVictim)
{
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    const std::size_t before = sys.secpb().occupancy();
    ASSERT_EQ(before, 10u);

    CrashWork w = sys.secpb().applicationCrash(
        1, SecPb::AppCrashPolicy::DrainProcess);
    EXPECT_EQ(w.entriesDrained, 5u);
    EXPECT_EQ(sys.secpb().occupancy(), 5u);

    // Process 1's data is persisted and recoverable...
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(sys.pm().hasData(static_cast<Addr>(i) * BlockSize));
    // ...process 2's entries remain resident (coalescing preserved).
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(
            sys.pm().hasData(0x800000 + static_cast<Addr>(i) * BlockSize));
}

TEST(AppCrash, DrainAllIgnoresAsid)
{
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    CrashWork w = sys.secpb().applicationCrash(
        1, SecPb::AppCrashPolicy::DrainAll);
    EXPECT_EQ(w.entriesDrained, 10u);
    EXPECT_TRUE(sys.secpb().empty());
}

TEST(AppCrash, DrainedProcessDataVerifies)
{
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    sys.secpb().applicationCrash(1, SecPb::AppCrashPolicy::DrainProcess);

    // Verify only the victim's blocks: tuple-complete and decryptable.
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    RecoveryReport report;
    for (int i = 0; i < 5; ++i) {
        const Addr a = static_cast<Addr>(i) * BlockSize;
        const BlockData expected = sys.oracle().blockContent(a);
        verifier.verifyBlock(sys.pm(), sys.tree(), a, &expected, report);
    }
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.blocksChecked, 5u);
}

TEST(AppCrash, SurvivorContinuesAndFullCrashStillRecovers)
{
    // After a drain-process app crash, the machine keeps running; a
    // later system crash must still recover everything.
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    sys.secpb().applicationCrash(1, SecPb::AppCrashPolicy::DrainProcess);

    // Process 2 keeps writing.
    for (int i = 5; i < 8; ++i)
        sys.storeBuffer().tryPush(
            0x800000 + static_cast<Addr>(i) * BlockSize, 0xB000 + i, 2);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);

    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
}

TEST(AppCrash, DrainProcessOnEagerScheme)
{
    // NoGap entries are tuple-complete already; drain-process just moves
    // them out with no late work.
    SystemConfig cfg = smallCfg();
    cfg.scheme = Scheme::NoGap;
    SecPbSystem sys(cfg);
    runTwoProcesses(sys);
    CrashWork w = sys.secpb().applicationCrash(
        2, SecPb::AppCrashPolicy::DrainProcess);
    EXPECT_EQ(w.entriesDrained, 5u);
    EXPECT_EQ(w.otpsGenerated, 0u);
    EXPECT_EQ(w.bmtRootUpdates, 0u);
}

TEST(AppCrash, UnknownAsidDrainsNothing)
{
    SecPbSystem sys(smallCfg());
    runTwoProcesses(sys);
    CrashWork w = sys.secpb().applicationCrash(
        7, SecPb::AppCrashPolicy::DrainProcess);
    EXPECT_EQ(w.entriesDrained, 0u);
    EXPECT_EQ(sys.secpb().occupancy(), 10u);
}
