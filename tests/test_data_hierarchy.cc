/**
 * @file
 * Unit tests for the L1/L2/L3 data hierarchy and the address-driven load
 * path.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "mem/data_hierarchy.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

struct Fixture
{
    EventQueue eq;
    StatGroup g{"g"};
    PcmModel pcm{eq, PcmConfig{}, g};
    DataHierarchy dh{DataHierarchyConfig{}, pcm, g};
};

} // namespace

TEST(DataHierarchy, ColdLoadGoesToMemory)
{
    Fixture f;
    const LoadOutcome out = f.dh.load(0x123456);
    EXPECT_EQ(out.level, MemLevel::Mem);
    EXPECT_GE(out.latency, 2u + 20u + 30u + 220u);
    EXPECT_EQ(f.pcm.numReads(), 1u);
}

TEST(DataHierarchy, FillMakesSubsequentLoadsL1Hits)
{
    Fixture f;
    f.dh.load(0x1000);
    const LoadOutcome out = f.dh.load(0x1000);
    EXPECT_EQ(out.level, MemLevel::L1);
    EXPECT_EQ(out.latency, 2u);
}

TEST(DataHierarchy, InclusiveFills)
{
    Fixture f;
    f.dh.load(0x2000);
    EXPECT_TRUE(f.dh.residentL1(0x2000));
    EXPECT_TRUE(f.dh.residentL2(0x2000));
    EXPECT_TRUE(f.dh.residentL3(0x2000));
}

TEST(DataHierarchy, L1EvictionFallsBackToL2)
{
    Fixture f;
    // Fill one L1 set (8 ways, 128 sets) with 9 conflicting blocks.
    const Addr stride = 128 * 64;  // same L1 set
    for (unsigned i = 0; i < 9; ++i)
        f.dh.load(i * stride);
    // Block 0 was evicted from L1 but lives in L2 (bigger).
    const LoadOutcome out = f.dh.load(0);
    EXPECT_EQ(out.level, MemLevel::L2);
    EXPECT_EQ(out.latency, 2u + 20u);
}

TEST(DataHierarchy, StoreAllocatePopulatesAllLevels)
{
    Fixture f;
    f.dh.storeAllocate(0x3000);
    EXPECT_EQ(f.dh.load(0x3000).level, MemLevel::L1);
    EXPECT_DOUBLE_EQ(f.dh.statStoreAllocs.value(), 1.0);
}

TEST(DataHierarchy, StatsCountHitLevels)
{
    Fixture f;
    f.dh.load(0x1000);  // mem
    f.dh.load(0x1000);  // l1
    EXPECT_DOUBLE_EQ(f.dh.statMemLoads.value(), 1.0);
    EXPECT_DOUBLE_EQ(f.dh.statL1Hits.value(), 1.0);
}

TEST(DataHierarchy, AddressDrivenModeRunsEndToEnd)
{
    const BenchmarkProfile &p = profileByName("gcc");
    SystemConfig cfg = SecPbSystem::configFor(Scheme::Cobcm, p);
    cfg.cpu.addressDrivenLoads = true;
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(p, 40'000, 5);
    SimulationResult r = sys.run(gen);
    EXPECT_GT(r.instructions, 39'000u);
    // The tag arrays actually got exercised.
    const double probes = sys.dataCache().statL1Hits.value() +
                          sys.dataCache().statL2Hits.value() +
                          sys.dataCache().statL3Hits.value() +
                          sys.dataCache().statMemLoads.value();
    EXPECT_GT(probes, 1000.0);
    // Most loads hit on-chip (the generator's locality model).
    EXPECT_GT(sys.dataCache().statL1Hits.value() / probes, 0.5);
}

TEST(DataHierarchy, AddressDrivenHitMixTracksProfile)
{
    // A profile with heavy PM loads must show more memory loads than a
    // cache-friendly one, when both run address-driven.
    auto mem_load_fraction = [](const char *bench) {
        const BenchmarkProfile &p = profileByName(bench);
        SystemConfig cfg = SecPbSystem::configFor(Scheme::Bbb, p);
        cfg.cpu.addressDrivenLoads = true;
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(p, 60'000, 5);
        sys.run(gen);
        const double mem = sys.dataCache().statMemLoads.value();
        const double total = mem + sys.dataCache().statL1Hits.value() +
                             sys.dataCache().statL2Hits.value() +
                             sys.dataCache().statL3Hits.value();
        return mem / total;
    };
    EXPECT_GT(mem_load_fraction("mcf"), mem_load_fraction("gamess") * 1.5);
}

TEST(DataHierarchy, AddressDrivenCrashStillRecovers)
{
    const BenchmarkProfile &p = profileByName("omnetpp");
    SystemConfig cfg = SecPbSystem::configFor(Scheme::Cobcm, p);
    cfg.cpu.addressDrivenLoads = true;
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(p, 30'000, 5);
    sys.start(gen);
    sys.runUntil(8'000);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
}

TEST(DataHierarchy, StatisticalModeIgnoresTags)
{
    // Default mode: the hierarchy exists but loads do not probe it.
    const BenchmarkProfile &p = profileByName("gcc");
    SystemConfig cfg = SecPbSystem::configFor(Scheme::Bbb, p);
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(p, 20'000, 5);
    sys.run(gen);
    EXPECT_DOUBLE_EQ(sys.dataCache().statL1Hits.value(), 0.0);
}
