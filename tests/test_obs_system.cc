/**
 * @file
 * Integration tests for observability wired into the full system: the
 * epoch sampler must never perturb simulation results, sampled series
 * and traces must be deterministic across identical runs, and the
 * built-in channels must all be present.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/system.hh"
#include "obs/trace.hh"
#include "stats/json.hh"
#include "workload/synthetic.hh"

using namespace secpb;
using namespace secpb::obs;

namespace
{

SystemConfig
sampledConfig(Tick period)
{
    const BenchmarkProfile &profile = profileByName("gamess");
    SystemConfig cfg = SecPbSystem::configFor(Scheme::Cm, profile);
    cfg.obs.samplePeriod = period;
    return cfg;
}

SimulationResult
runWith(const SystemConfig &cfg, SampleSeries *series = nullptr)
{
    SyntheticGenerator gen(profileByName("gamess"), 20'000, /*seed=*/7);
    SecPbSystem sys(cfg);
    const SimulationResult res = sys.run(gen);
    if (series && sys.sampler())
        *series = sys.sampler()->series();
    return res;
}

std::string
resultJson(const SimulationResult &res)
{
    std::ostringstream ss;
    JsonWriter w(ss, /*pretty=*/false);
    res.toJson(w);
    return ss.str();
}

std::string
seriesJson(const SampleSeries &series)
{
    std::ostringstream ss;
    JsonWriter w(ss, /*pretty=*/false);
    series.toJson(w);
    return ss.str();
}

} // namespace

TEST(ObsSystem, SamplingDoesNotPerturbSimulationResults)
{
    const SimulationResult plain = runWith(sampledConfig(0));
    const SimulationResult sampled = runWith(sampledConfig(500));
    EXPECT_EQ(resultJson(plain), resultJson(sampled));
}

TEST(ObsSystem, BuiltInChannelsArePresentAndPopulated)
{
    SampleSeries series;
    runWith(sampledConfig(500), &series);

    const std::vector<std::string> expected = {
        "secpb_occupancy",  "sb_occupancy",    "wpq_depth",
        "battery_headroom_j", "ctr_cache_dirty", "mac_cache_dirty",
        "bmt_inflight_walks",
    };
    ASSERT_EQ(series.channels, expected);
    ASSERT_GE(series.numEpochs(), 2u);  // epoch 0 plus at least one more
    EXPECT_EQ(series.ticks[0], 0u);
    EXPECT_TRUE(std::is_sorted(series.ticks.begin(), series.ticks.end()));

    // Battery headroom starts at the full provisioned margin and stays
    // near it; mid-run it may dip slightly below zero because metadata
    // -cache flush work is not part of the per-entry provisioning
    // margin -- surfacing exactly that transient is the channel's job.
    const auto &headroom = series.values[3];
    EXPECT_GT(headroom.front(), 0.0);
    for (double h : headroom) {
        EXPECT_TRUE(std::isfinite(h));
        EXPECT_GT(h, -0.01);  // joules; a real deficit would be larger
    }

    // A CM run persists stores, so SecPB occupancy moves off zero in at
    // least one epoch.
    const auto &occupancy = series.values[0];
    EXPECT_GT(*std::max_element(occupancy.begin(), occupancy.end()), 0.0);
}

TEST(ObsSystem, SampledSeriesIsDeterministic)
{
    SampleSeries a, b;
    runWith(sampledConfig(500), &a);
    runWith(sampledConfig(500), &b);
    EXPECT_EQ(seriesJson(a), seriesJson(b));
}

TEST(ObsSystem, TraceIsDeterministicAcrossIdenticalRuns)
{
    auto traceOnce = [&] {
        Tracer t;
        {
            TraceSession session(&t);
            runWith(sampledConfig(500));
        }
        std::ostringstream ss;
        t.writeJson(ss);
        return ss.str();
    };
    const std::string first = traceOnce();
    const std::string second = traceOnce();
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
    // The wired components all show up as named tracks.
    for (const char *track : {"secpb", "crypto", "pcm", "sampler"})
        EXPECT_NE(first.find("\"" + std::string(track) + "\""),
                  std::string::npos)
            << track;
}

TEST(ObsSystem, TracingDoesNotPerturbSimulationResults)
{
    const SimulationResult plain = runWith(sampledConfig(0));
    Tracer t;
    SimulationResult traced;
    {
        TraceSession session(&t);
        traced = runWith(sampledConfig(0));
    }
    EXPECT_GT(t.numEvents(), 0u);
    EXPECT_EQ(resultJson(plain), resultJson(traced));
}
