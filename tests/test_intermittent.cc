/**
 * @file
 * Intermittent-power robustness tests: the system Capacitor as the
 * crash-drain budget (byte-identical to the flat scalar at full nominal
 * charge), crash-recover-crash power schedules across every scheme,
 * power loss during recovery, and the adaptive drain policy's
 * never-overspend invariant under brownouts.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/system.hh"
#include "fault/injector.hh"
#include "fault/power.hh"
#include "recovery/restore.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

SystemConfig
batteryConfig(Scheme scheme, double provision_fraction = 1.0,
              bool adaptive = false,
              const CapacitorParams &params = {})
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.pmDataBytes = 1ULL << 30;
    cfg.battery.enabled = true;
    cfg.battery.cap = params;
    cfg.battery.provisionFraction = provision_fraction;
    cfg.battery.adaptive.enabled = adaptive;
    return cfg;
}

} // namespace

TEST(CapacitorBudget, FullNominalIsByteIdenticalToFlatBudget)
{
    // The acceptance contract for replacing the scalar budget: a
    // fixed-seed run crashing on an ideal capacitor at fraction f of
    // the worst-case provisioning must be *bit-identical* to the same
    // run under FaultPlan::batteryFraction = f.
    for (double f : {0.4, 0.75, 1.0}) {
        FaultReport flat, cell;
        {
            SystemConfig cfg;
            cfg.scheme = Scheme::Cobcm;
            cfg.pmDataBytes = 1ULL << 30;
            SecPbSystem sys(cfg);
            FaultPlan plan;
            plan.crashAtPersist = 150;
            plan.batteryFraction = f;
            SyntheticGenerator gen(profileByName("gamess"), 12'000, 7);
            flat = FaultInjector(sys, plan).run(gen);
        }
        {
            SecPbSystem sys(batteryConfig(Scheme::Cobcm, f));
            FaultPlan plan;
            plan.crashAtPersist = 150;  // Budget comes from the cell.
            SyntheticGenerator gen(profileByName("gamess"), 12'000, 7);
            cell = FaultInjector(sys, plan).run(gen);
        }

        ASSERT_TRUE(flat.crash.batteryBudgetJ.has_value());
        ASSERT_TRUE(cell.crash.batteryBudgetJ.has_value());
        EXPECT_EQ(*flat.crash.batteryBudgetJ, *cell.crash.batteryBudgetJ)
            << "budget mismatch at f=" << f;
        EXPECT_EQ(flat.crashTick, cell.crashTick);
        EXPECT_EQ(flat.persistsAtCrash, cell.persistsAtCrash);
        EXPECT_EQ(flat.crash.work.energySpentJ,
                  cell.crash.work.energySpentJ);
        EXPECT_EQ(flat.crash.work.batteryExhausted,
                  cell.crash.work.batteryExhausted);
        EXPECT_EQ(flat.crash.work.drainedBlocks,
                  cell.crash.work.drainedBlocks);
        ASSERT_EQ(flat.crash.work.abandoned.size(),
                  cell.crash.work.abandoned.size());
        for (std::size_t i = 0; i < flat.crash.work.abandoned.size(); ++i)
            EXPECT_EQ(flat.crash.work.abandoned[i].addr,
                      cell.crash.work.abandoned[i].addr);
        EXPECT_EQ(flat.crash.recovered, cell.crash.recovered);
        EXPECT_TRUE(cell.crash.recovered);
        // And the cell's charge accounting closed the loop.
        ASSERT_TRUE(cell.crash.batteryAfterJ.has_value());
        EXPECT_FALSE(flat.crash.batteryAfterJ.has_value());
    }
}

TEST(CapacitorBudget, DrainDepletesTheCell)
{
    SecPbSystem sys(batteryConfig(Scheme::Bcm, 1.0));
    const double before = sys.battery()->storedEnergyJ();
    SyntheticGenerator gen(profileByName("lbm"), 8'000, 11);
    sys.start(gen);
    sys.runUntil(30'000);
    const CrashReport cr = sys.crashNow();
    ASSERT_TRUE(cr.batteryAfterJ.has_value());
    EXPECT_DOUBLE_EQ(before - *cr.batteryAfterJ, cr.work.energySpentJ);
    EXPECT_FALSE(cr.work.batteryExhausted);
    EXPECT_TRUE(cr.recovered);
}

TEST(Intermittent, ScheduleDrawsAreDeterministicAndIndependent)
{
    const PowerScheduleSpec spec =
        PowerScheduleSpec::parse("cycles=5,seed=99,brownout=0.5");
    for (unsigned c = 0; c < 5; ++c) {
        const PowerCycleDraw a = spec.draw(c);
        const PowerCycleDraw b = spec.draw(c);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.workloadSeed, b.workloadSeed);
        EXPECT_EQ(a.crashDelta, b.crashDelta);
        EXPECT_EQ(a.brownout, b.brownout);
        EXPECT_EQ(a.rechargeFraction, b.rechargeFraction);
        EXPECT_GE(a.instructions, spec.minInstructions);
        EXPECT_LE(a.instructions, spec.maxInstructions);
    }
    // Tampers only ever land on the final cycle.
    for (unsigned c = 0; c + 1 < 5; ++c)
        EXPECT_EQ(spec.draw(c).tampers, 0u);
}

TEST(IntermittentDeath, BadScheduleKeysAreFatal)
{
    EXPECT_EXIT(PowerScheduleSpec::parse("cycles=0"),
                ::testing::ExitedWithCode(1), "cycles must be");
    EXPECT_EXIT(PowerScheduleSpec::parse("bogus=1"),
                ::testing::ExitedWithCode(1), "unknown key");
    EXPECT_EXIT(PowerScheduleSpec::parse("cycles"),
                ::testing::ExitedWithCode(1), "key=value");
    EXPECT_EXIT(PowerScheduleSpec::parse("brownout=x"),
                ::testing::ExitedWithCode(1), "bad value");
}

TEST(Intermittent, CrashRecoverCrashSurvivesEverySecureScheme)
{
    // Three power cycles of crash -> restore -> run -> crash per
    // scheme, with brownouts and mid-recovery power loss in the
    // schedule. Every cycle must restore to a verified image and every
    // crash must recover prefix-consistently: zero silent acceptance.
    const PowerScheduleSpec spec = PowerScheduleSpec::parse(
        "cycles=3,seed=21,brownout=0.6,interrupt=0.6,tamper-max=2");
    for (Scheme scheme : SchemeZoo) {
        IntermittentPowerInjector inj(batteryConfig(scheme), spec,
                                      "omnetpp");
        const IntermittentReport r = inj.run();
        ASSERT_EQ(r.cycles.size(), 3u);
        EXPECT_TRUE(r.ok()) << "scheme " << schemeName(scheme);
        for (const PowerCycleOutcome &c : r.cycles) {
            EXPECT_TRUE(c.restoreFinal.complete);
            EXPECT_TRUE(c.restoreFinal.verified);
            EXPECT_TRUE(c.fault.crash.recovered);
        }
    }
}

TEST(Intermittent, InterruptedRestoreRerunsToConvergence)
{
    // Crash with a starved battery to strand abandoned residencies,
    // then restore on a fresh incarnation with the BMT rebuild cut off
    // mid-walk -- power died during recovery. The re-run must converge
    // to a complete, verified restore.
    SystemConfig cfg;
    cfg.scheme = Scheme::Cobcm;
    cfg.pmDataBytes = 1ULL << 30;
    PmImage pm;
    BonsaiMerkleTree tree(1);
    PersistOracle oracle;
    std::vector<AbandonedResidency> abandoned;
    {
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(profileByName("gamess"), 10'000, 3);
        sys.start(gen);
        sys.runUntil(40'000);
        CrashOptions opts;
        opts.batteryEnergyJ = 0.15 * sys.provisionedCrashEnergy();
        const CrashReport cr = sys.crashNow(opts);
        ASSERT_TRUE(cr.work.batteryExhausted);
        ASSERT_FALSE(cr.work.abandoned.empty());
        ASSERT_TRUE(cr.recovered);
        pm = sys.pm();
        tree = sys.tree();
        oracle = sys.oracle();
        abandoned = cr.work.abandoned;
    }

    SecPbSystem reboot(cfg);
    reboot.adoptPersistentState(pm, tree, oracle);
    RestoreManager rm(reboot);

    RestoreOptions cut;
    cut.maxLeafRepairs = 1;
    const RestoreReport first = rm.restore(abandoned, cut);
    ASSERT_FALSE(first.complete);
    EXPECT_EQ(first.leavesRebuilt, 1u);
    EXPECT_FALSE(first.verified);

    const RestoreReport second = rm.restore(abandoned);
    EXPECT_TRUE(second.complete);
    EXPECT_TRUE(second.verified) << "re-run restore must converge";
    // Every abandoned residency was classified, none silently kept.
    EXPECT_EQ(second.blocksRetained + second.blocksRolledBack +
                  second.blocksForgotten + second.blocksQuarantined,
              abandoned.size());

    // And the restored image sustains a fresh workload segment.
    SyntheticGenerator gen2(profileByName("gamess"), 5'000, 4);
    reboot.start(gen2);
    reboot.runUntil(1'000'000'000);
    const CrashReport cr2 = reboot.crashNow();
    EXPECT_TRUE(cr2.recovered);
}

TEST(Intermittent, AdaptivePolicyNeverOverspendsTheCell)
{
    // The tentpole invariant: with the adaptive drain policy enabled,
    // no crash drain may need more energy than the capacitor held at
    // crash time -- even under a schedule of deep brownouts, partial
    // recharges, and per-cycle aging on a derated supercap.
    CapacitorParams params = capacitorPresetFor("supercap");
    params.capacitanceDerate = 0.4;
    const PowerScheduleSpec spec = PowerScheduleSpec::parse(
        "cycles=4,seed=13,brownout=0.9,retain-min=0.05,retain-max=0.3,"
        "fade=0.9,recharge-floor=0.5");
    for (Scheme scheme : {Scheme::Cobcm, Scheme::NoGap}) {
        IntermittentPowerInjector inj(
            batteryConfig(scheme, 1.0, /*adaptive=*/true, params), spec,
            "mcf");
        const IntermittentReport r = inj.run();
        EXPECT_TRUE(r.ok()) << "scheme " << schemeName(scheme);
        for (const PowerCycleOutcome &c : r.cycles) {
            EXPECT_LE(c.energySpentJ, c.deliverableAtCrashJ + 1e-12)
                << "scheme " << schemeName(scheme)
                << ": drain needed more than the cell held";
        }
    }
}

TEST(Adaptive, WatermarksTightenWithBatteryHeadroom)
{
    // Provision the cell for only a sliver of the worst case: the
    // effective watermarks must derive below the configured ones, and
    // the allocation gate must engage under load.
    SystemConfig cfg = batteryConfig(Scheme::Cobcm, 0.05, true);
    SecPbSystem sys(cfg);
    SecPb &pb = sys.secpb();
    EXPECT_LT(pb.effectiveHighWatermarkEntries(),
              pb.highWatermarkEntries());
    EXPECT_LT(pb.effectiveLowWatermarkEntries(),
              pb.effectiveHighWatermarkEntries());

    SyntheticGenerator gen(profileByName("lbm"), 20'000, 9);
    const SimulationResult res = sys.run(gen);
    EXPECT_GT(res.persists, 0u);
    EXPECT_GT(pb.statBatteryStalls.value(), 0u);

    // The occupancy the gate enforced stays drainable: crash now and
    // the cell must cover the whole drain.
    const CrashReport cr = sys.crashNow();
    EXPECT_FALSE(cr.work.batteryExhausted);
    EXPECT_LE(cr.work.energySpentJ, *cr.batteryBudgetJ + 1e-12);
    EXPECT_TRUE(cr.recovered);
}

TEST(Adaptive, FullNominalCellLeavesWatermarksAlone)
{
    // At full worst-case provisioning the policy must be invisible:
    // the effective watermarks equal the configured ones (modulo the
    // conservative in-flight margin never binding) and no stalls occur.
    SystemConfig cfg = batteryConfig(Scheme::Cobcm, 1.0, true);
    SecPbSystem sys(cfg);
    SecPb &pb = sys.secpb();
    EXPECT_EQ(pb.effectiveHighWatermarkEntries(),
              pb.highWatermarkEntries());
    EXPECT_EQ(pb.effectiveLowWatermarkEntries(),
              pb.lowWatermarkEntries());

    SyntheticGenerator gen(profileByName("gamess"), 15'000, 5);
    sys.run(gen);
    EXPECT_EQ(pb.statBatteryStalls.value(), 0u);
}

TEST(Intermittent, BrownoutReserveProtectsCommittedWork)
{
    // Load the buffer, brown the rail out to near-nothing, and crash
    // immediately: the BBU reserve must leave enough deliverable
    // energy for the committed obligation, so nothing is abandoned
    // beyond what the policy admitted.
    SystemConfig cfg = batteryConfig(Scheme::Obcm, 1.0, true);
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profileByName("lbm"), 10'000, 17);
    sys.start(gen);
    sys.runUntil(25'000);
    sys.applyBrownout(0.0);  // As deep as a sag can go.
    const CrashReport cr = sys.crashNow();
    EXPECT_LE(cr.work.energySpentJ, *cr.batteryBudgetJ + 1e-12);
    EXPECT_TRUE(cr.recovered);
}
