/**
 * @file
 * Unit tests for the scheme definitions: traits encode Table II exactly,
 * names round-trip, and the early/late split is monotone across the
 * spectrum.
 */

#include <gtest/gtest.h>

#include "secpb/scheme.hh"

using namespace secpb;

TEST(Scheme, TraitsMatchTableII)
{
    // COBCM: only data write early.
    const SchemeTraits cobcm = schemeTraits(Scheme::Cobcm);
    EXPECT_TRUE(cobcm.secure);
    EXPECT_FALSE(cobcm.earlyCounter);
    EXPECT_FALSE(cobcm.earlyOtp);
    EXPECT_FALSE(cobcm.earlyBmt);
    EXPECT_FALSE(cobcm.earlyCiphertext);
    EXPECT_FALSE(cobcm.earlyMac);

    // OBCM: update counter.
    EXPECT_TRUE(schemeTraits(Scheme::Obcm).earlyCounter);
    EXPECT_FALSE(schemeTraits(Scheme::Obcm).earlyOtp);

    // BCM: counter + OTP.
    EXPECT_TRUE(schemeTraits(Scheme::Bcm).earlyOtp);
    EXPECT_FALSE(schemeTraits(Scheme::Bcm).earlyBmt);

    // CM: counter + OTP + BMT root.
    EXPECT_TRUE(schemeTraits(Scheme::Cm).earlyBmt);
    EXPECT_FALSE(schemeTraits(Scheme::Cm).earlyCiphertext);

    // M: everything but the MAC.
    EXPECT_TRUE(schemeTraits(Scheme::M).earlyCiphertext);
    EXPECT_FALSE(schemeTraits(Scheme::M).earlyMac);

    // NoGap: everything.
    EXPECT_TRUE(schemeTraits(Scheme::NoGap).earlyMac);

    // BBB: no security at all.
    EXPECT_FALSE(schemeTraits(Scheme::Bbb).secure);
}

TEST(Scheme, LazinessIsMonotone)
{
    // Walking the spectrum from COBCM to NoGap only ever turns early
    // bits ON (this is what makes it a spectrum).
    const Scheme order[] = {Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
                            Scheme::Cm, Scheme::M, Scheme::NoGap};
    auto count_early = [](Scheme s) {
        const SchemeTraits t = schemeTraits(s);
        return int(t.earlyCounter) + int(t.earlyOtp) + int(t.earlyBmt) +
               int(t.earlyCiphertext) + int(t.earlyMac);
    };
    for (unsigned i = 0; i + 1 < std::size(order); ++i)
        EXPECT_EQ(count_early(order[i]) + 1, count_early(order[i + 1]));
}

TEST(Scheme, DependencyOrderRespected)
{
    // The dependency graph (Fig. 4): anything early implies everything
    // it depends on is early. OTP needs the counter; ciphertext needs
    // the OTP; MAC needs the ciphertext; BMT needs the counter.
    for (Scheme s : {Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm, Scheme::Cm,
                     Scheme::M, Scheme::NoGap}) {
        const SchemeTraits t = schemeTraits(s);
        if (t.earlyOtp) {
            EXPECT_TRUE(t.earlyCounter) << schemeName(s);
        }
        if (t.earlyBmt) {
            EXPECT_TRUE(t.earlyCounter) << schemeName(s);
        }
        if (t.earlyCiphertext) {
            EXPECT_TRUE(t.earlyOtp) << schemeName(s);
        }
        if (t.earlyMac) {
            EXPECT_TRUE(t.earlyCiphertext) << schemeName(s);
        }
    }
}

TEST(Scheme, OnlySecWtSkipsCoalescing)
{
    for (Scheme s : {Scheme::Bbb, Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
                     Scheme::Cm, Scheme::M, Scheme::NoGap})
        EXPECT_TRUE(schemeTraits(s).coalesceValueIndependent)
            << schemeName(s);
    EXPECT_FALSE(schemeTraits(Scheme::SecWt).coalesceValueIndependent);
}

TEST(Scheme, NamesRoundTrip)
{
    for (Scheme s : {Scheme::Bbb, Scheme::Sp, Scheme::SecWt, Scheme::Cobcm,
                     Scheme::Obcm, Scheme::Bcm, Scheme::Cm, Scheme::M,
                     Scheme::NoGap})
        EXPECT_EQ(parseScheme(schemeName(s)), s);
}

TEST(Scheme, ParseUnknownIsFatal)
{
    EXPECT_DEATH(parseScheme("banana"), "unknown scheme");
}

TEST(Scheme, SweepListCoversAllSixLaziestFirst)
{
    ASSERT_EQ(std::size(SecPbSchemes), 6u);
    EXPECT_EQ(SecPbSchemes[0], Scheme::Cobcm);
    EXPECT_EQ(SecPbSchemes[5], Scheme::NoGap);
}
