/**
 * @file
 * Unit tests for the scheme definitions: traits encode Table II exactly,
 * names round-trip, and the early/late split is monotone across the
 * spectrum.
 */

#include <gtest/gtest.h>

#include "secpb/scheme.hh"

using namespace secpb;

TEST(Scheme, TraitsMatchTableII)
{
    // COBCM: only data write early.
    const SchemeTraits cobcm = schemeTraits(Scheme::Cobcm);
    EXPECT_TRUE(cobcm.secure);
    EXPECT_FALSE(cobcm.earlyCounter);
    EXPECT_FALSE(cobcm.earlyOtp);
    EXPECT_FALSE(cobcm.earlyBmt);
    EXPECT_FALSE(cobcm.earlyCiphertext);
    EXPECT_FALSE(cobcm.earlyMac);

    // OBCM: update counter.
    EXPECT_TRUE(schemeTraits(Scheme::Obcm).earlyCounter);
    EXPECT_FALSE(schemeTraits(Scheme::Obcm).earlyOtp);

    // BCM: counter + OTP.
    EXPECT_TRUE(schemeTraits(Scheme::Bcm).earlyOtp);
    EXPECT_FALSE(schemeTraits(Scheme::Bcm).earlyBmt);

    // CM: counter + OTP + BMT root.
    EXPECT_TRUE(schemeTraits(Scheme::Cm).earlyBmt);
    EXPECT_FALSE(schemeTraits(Scheme::Cm).earlyCiphertext);

    // M: everything but the MAC.
    EXPECT_TRUE(schemeTraits(Scheme::M).earlyCiphertext);
    EXPECT_FALSE(schemeTraits(Scheme::M).earlyMac);

    // NoGap: everything.
    EXPECT_TRUE(schemeTraits(Scheme::NoGap).earlyMac);

    // BBB: no security at all.
    EXPECT_FALSE(schemeTraits(Scheme::Bbb).secure);
}

TEST(Scheme, LazinessIsMonotone)
{
    // Walking the spectrum from COBCM to NoGap only ever turns early
    // bits ON (this is what makes it a spectrum).
    const Scheme order[] = {Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
                            Scheme::Cm, Scheme::M, Scheme::NoGap};
    auto count_early = [](Scheme s) {
        const SchemeTraits t = schemeTraits(s);
        return int(t.earlyCounter) + int(t.earlyOtp) + int(t.earlyBmt) +
               int(t.earlyCiphertext) + int(t.earlyMac);
    };
    for (unsigned i = 0; i + 1 < std::size(order); ++i)
        EXPECT_EQ(count_early(order[i]) + 1, count_early(order[i + 1]));
}

TEST(Scheme, DependencyOrderRespected)
{
    // The dependency graph (Fig. 4): anything early implies everything
    // it depends on is early. OTP needs the counter; ciphertext needs
    // the OTP; MAC needs the ciphertext; BMT needs the counter.
    for (Scheme s : {Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm, Scheme::Cm,
                     Scheme::M, Scheme::NoGap}) {
        const SchemeTraits t = schemeTraits(s);
        if (t.earlyOtp) {
            EXPECT_TRUE(t.earlyCounter) << schemeName(s);
        }
        if (t.earlyBmt) {
            EXPECT_TRUE(t.earlyCounter) << schemeName(s);
        }
        if (t.earlyCiphertext) {
            EXPECT_TRUE(t.earlyOtp) << schemeName(s);
        }
        if (t.earlyMac) {
            EXPECT_TRUE(t.earlyCiphertext) << schemeName(s);
        }
    }
}

TEST(Scheme, OnlySecWtSkipsCoalescing)
{
    for (Scheme s : {Scheme::Bbb, Scheme::Cobcm, Scheme::Obcm, Scheme::Bcm,
                     Scheme::Cm, Scheme::M, Scheme::NoGap})
        EXPECT_TRUE(schemeTraits(s).coalesceValueIndependent)
            << schemeName(s);
    EXPECT_FALSE(schemeTraits(Scheme::SecWt).coalesceValueIndependent);
}

TEST(Scheme, NamesRoundTrip)
{
    for (Scheme s : SchemeList)
        EXPECT_EQ(parseScheme(schemeName(s)), s);
    ASSERT_EQ(std::size(SchemeList), 13u);
}

TEST(Scheme, NamesAreCanonicalLowercase)
{
    for (Scheme s : SchemeList) {
        const std::string name = schemeName(s);
        for (char c : name)
            EXPECT_FALSE(std::isupper(static_cast<unsigned char>(c)))
                << name;
    }
}

TEST(Scheme, ParseIsCaseInsensitive)
{
    // Legacy mixed-case spellings from older CLIs/configs keep parsing.
    EXPECT_EQ(parseScheme("COBCM"), Scheme::Cobcm);
    EXPECT_EQ(parseScheme("CM"), Scheme::Cm);
    EXPECT_EQ(parseScheme("NoGap"), Scheme::NoGap);
    EXPECT_EQ(parseScheme("Sec_WT"), Scheme::SecWt);
    EXPECT_EQ(parseScheme("eADR"), Scheme::Eadr);
    EXPECT_EQ(parseScheme("SecPM"), Scheme::Secpm);
}

TEST(Scheme, ParseTriadLevelsSpec)
{
    SchemeParams params;
    EXPECT_EQ(parseSchemeSpec("triad:levels=3", &params), Scheme::Triad);
    EXPECT_EQ(params.triadLevels, 3u);
    EXPECT_EQ(schemeSpecName(Scheme::Triad, params), "triad:levels=3");
    EXPECT_EQ(schemeSpecName(Scheme::Cobcm, params), "cobcm");

    // Bare "triad" keeps the default.
    SchemeParams def;
    EXPECT_EQ(parseSchemeSpec("triad", &def), Scheme::Triad);
    EXPECT_EQ(def.triadLevels, 2u);
}

TEST(Scheme, BadSpecsAreFatal)
{
    EXPECT_DEATH(parseScheme("banana"), "unknown scheme");
    EXPECT_DEATH(parseSchemeSpec("cobcm:levels=2"), "takes no parameters");
    EXPECT_DEATH(parseSchemeSpec("triad:levels=0"), "triad level");
    EXPECT_DEATH(parseSchemeSpec("triad:depth=2"), "bad triad spec");
}

TEST(Scheme, ZooTraits)
{
    // SecPM: lazy BMT only; the counter persists with the data.
    const SchemeTraits secpm = schemeTraits(Scheme::Secpm);
    EXPECT_TRUE(secpm.secure);
    EXPECT_TRUE(secpm.earlyCounter);
    EXPECT_FALSE(secpm.earlyBmt);
    EXPECT_TRUE(secpm.earlyMac);

    // Triad: BCM-like runtime split.
    EXPECT_EQ(schemeTraits(Scheme::Triad).earlyOtp,
              schemeTraits(Scheme::Bcm).earlyOtp);
    EXPECT_FALSE(schemeTraits(Scheme::Triad).earlyBmt);

    // eADR: COBCM-lazy runtime.
    const SchemeTraits eadr = schemeTraits(Scheme::Eadr);
    EXPECT_TRUE(eadr.secure);
    EXPECT_FALSE(eadr.earlyCounter);
    EXPECT_FALSE(eadr.earlyMac);

    // Stream: NoGap-eager tuple.
    const SchemeTraits stream = schemeTraits(Scheme::Stream);
    EXPECT_TRUE(stream.earlyBmt);
    EXPECT_TRUE(stream.earlyMac);
    EXPECT_TRUE(stream.coalesceValueIndependent);
}

TEST(Scheme, SweepListCoversAllSixLaziestFirst)
{
    ASSERT_EQ(std::size(SecPbSchemes), 6u);
    EXPECT_EQ(SecPbSchemes[0], Scheme::Cobcm);
    EXPECT_EQ(SecPbSchemes[5], Scheme::NoGap);
}

TEST(Scheme, ZooExtendsTheSixWithRelatedWork)
{
    ASSERT_EQ(std::size(SchemeZoo), 10u);
    // Prefix is exactly the paper's six, same order.
    for (unsigned i = 0; i < std::size(SecPbSchemes); ++i)
        EXPECT_EQ(SchemeZoo[i], SecPbSchemes[i]);
    EXPECT_EQ(SchemeZoo[6], Scheme::Secpm);
    EXPECT_EQ(SchemeZoo[7], Scheme::Triad);
    EXPECT_EQ(SchemeZoo[8], Scheme::Eadr);
    EXPECT_EQ(SchemeZoo[9], Scheme::Stream);
    // Every zoo scheme is secure (the zoo sweeps the recovery verifier).
    for (Scheme s : SchemeZoo)
        EXPECT_TRUE(schemeTraits(s).secure) << schemeName(s);
}
