/**
 * @file
 * Capacitor physics model tests: sizing exactness (the byte-identity
 * contract with the flat budget), voltage-window math, ESR losses,
 * leakage, aging, and the brownout reserve clamp.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "energy/capacitor.hh"

using namespace secpb;

TEST(Capacitor, IdealSizedForDeliversExactlyWhatItWasSizedFor)
{
    // The contract that keeps fixed-seed capacitor runs byte-identical
    // to the flat scalar budget: ideal params, full charge, exact
    // equality -- not approximate.
    const double e = 0.123456789;
    Capacitor c = Capacitor::sizedFor(e);
    EXPECT_EQ(c.capacityJ(), e);
    EXPECT_EQ(c.storedEnergyJ(), e);
    EXPECT_EQ(c.dischargeEfficiency(), 1.0);
    EXPECT_EQ(c.deliverableEnergyJ(), e);
}

TEST(Capacitor, DefaultConstructedDeliversNothing)
{
    Capacitor c;
    EXPECT_EQ(c.capacityJ(), 0.0);
    EXPECT_EQ(c.deliverableEnergyJ(), 0.0);
    EXPECT_EQ(c.deliver(1.0), 0.0);
}

TEST(Capacitor, UsableWindowFractions)
{
    // supercap: (2.7^2 - 1^2) / 2.7^2; li-thin: (16 - 9) / 16 exactly.
    EXPECT_NEAR(usableWindowFraction(capacitorPresetFor("supercap")),
                (2.7 * 2.7 - 1.0) / (2.7 * 2.7), 1e-12);
    EXPECT_DOUBLE_EQ(usableWindowFraction(capacitorPresetFor("li-thin")),
                     0.4375);
    EXPECT_DOUBLE_EQ(usableWindowFraction(CapacitorParams{}),
                     (25.0 - 1.0) / 25.0);
}

TEST(Capacitor, VoltageSpansRatedToCutoff)
{
    CapacitorParams p = capacitorPresetFor("supercap");
    Capacitor c = Capacitor::sizedFor(1.0, p);
    EXPECT_NEAR(c.voltage(), p.ratedVoltage, 1e-12);
    c.setChargeFraction(0.0);
    EXPECT_NEAR(c.voltage(), p.cutoffVoltage, 1e-12);
    c.setChargeFraction(0.5);
    EXPECT_GT(c.voltage(), p.cutoffVoltage);
    EXPECT_LT(c.voltage(), p.ratedVoltage);
}

TEST(Capacitor, CapacitanceMatchesEnergyWindow)
{
    CapacitorParams p = capacitorPresetFor("supercap");
    Capacitor c = Capacitor::sizedFor(2.0, p);
    const double v2 = p.ratedVoltage * p.ratedVoltage;
    const double c2 = p.cutoffVoltage * p.cutoffVoltage;
    // E_usable = 1/2 C (V^2 - Vcut^2).
    EXPECT_NEAR(0.5 * c.capacitanceF() * (v2 - c2), c.capacityJ(), 1e-12);
}

TEST(Capacitor, EsrBurnsEnergyOnDelivery)
{
    CapacitorParams p = capacitorPresetFor("supercap");
    Capacitor c = Capacitor::sizedFor(1.0, p);
    const double eff = c.dischargeEfficiency();
    EXPECT_LT(eff, 1.0);
    EXPECT_GT(eff, 0.9);  // 0.5 A * 0.05 ohm over 2.7 V is a small drop.

    const double before = c.storedEnergyJ();
    EXPECT_DOUBLE_EQ(c.deliver(0.1), 0.1);
    // The storage gave up more than the load received.
    EXPECT_GT(before - c.storedEnergyJ(), 0.1);
}

TEST(Capacitor, DeliverClampsAtEmpty)
{
    Capacitor c = Capacitor::sizedFor(0.5);
    EXPECT_DOUBLE_EQ(c.deliver(2.0), 0.5);
    EXPECT_EQ(c.storedEnergyJ(), 0.0);
    EXPECT_EQ(c.deliver(0.1), 0.0);
}

TEST(Capacitor, RechargePathsClampAtCapacity)
{
    Capacitor c = Capacitor::sizedFor(1.0);
    c.setChargeFraction(0.25);
    c.recharge(0.25);
    EXPECT_DOUBLE_EQ(c.storedEnergyJ(), 0.5);
    c.rechargeFor(10.0, 1.0);  // 10 J offered, 0.5 J of headroom.
    EXPECT_DOUBLE_EQ(c.storedEnergyJ(), 1.0);
    c.rechargeFull();
    EXPECT_DOUBLE_EQ(c.storedEnergyJ(), 1.0);
}

TEST(Capacitor, BrownoutBleedsCharge)
{
    Capacitor c = Capacitor::sizedFor(1.0);
    c.applyBrownout(0.3);
    EXPECT_DOUBLE_EQ(c.storedEnergyJ(), 0.3);
    c.applyBrownout(0.0);
    EXPECT_EQ(c.storedEnergyJ(), 0.0);
}

TEST(Capacitor, BrownoutRespectsProtectedReserve)
{
    Capacitor c = Capacitor::sizedFor(1.0);
    // The BBU isolation diode: the sag keeps the deliverable energy at
    // (or above) the committed reserve.
    c.applyBrownout(0.1, /*reserve_j=*/0.6);
    EXPECT_GE(c.deliverableEnergyJ(), 0.6 - 1e-12);
    EXPECT_LT(c.storedEnergyJ(), 1.0);

    // The diode cannot create charge: a reserve above what is stored
    // just suppresses the sag entirely.
    Capacitor low = Capacitor::sizedFor(1.0);
    low.setChargeFraction(0.2);
    low.applyBrownout(0.1, /*reserve_j=*/0.5);
    EXPECT_DOUBLE_EQ(low.storedEnergyJ(), 0.2);
}

TEST(Capacitor, BrownoutReserveClampWorksWithEsr)
{
    // With ESR the deliverable is nonlinear in the stored energy; the
    // bisection still has to land the deliverable on the reserve.
    CapacitorParams p = capacitorPresetFor("supercap");
    Capacitor c = Capacitor::sizedFor(1.0, p);
    c.applyBrownout(0.01, /*reserve_j=*/0.4);
    EXPECT_GE(c.deliverableEnergyJ(), 0.4 - 1e-9);
    EXPECT_LT(c.deliverableEnergyJ(), 0.45);
}

TEST(Capacitor, AgingFadesCapacityAndGrowsEsr)
{
    CapacitorParams p = capacitorPresetFor("supercap");
    Capacitor c = Capacitor::sizedFor(1.0, p);
    const double esr0 = c.params().esrOhms;
    c.age(0.8, 2.0);
    EXPECT_DOUBLE_EQ(c.capacityJ(), 0.8);
    EXPECT_DOUBLE_EQ(c.storedEnergyJ(), 0.8);  // Charge clamps to fit.
    EXPECT_DOUBLE_EQ(c.params().esrOhms, 2.0 * esr0);
}

TEST(Capacitor, ConstructionDerateShrinksThePart)
{
    CapacitorParams p;
    p.capacitanceDerate = 0.5;
    Capacitor c = Capacitor::sizedFor(1.0, p);
    EXPECT_DOUBLE_EQ(c.capacityJ(), 0.5);
}

TEST(Capacitor, LeakageDrainsOverTime)
{
    CapacitorParams p = capacitorPresetFor("supercap");  // 1 uW leak.
    Capacitor c = Capacitor::sizedFor(1.0, p);
    c.leak(1000.0);
    EXPECT_NEAR(c.storedEnergyJ(), 1.0 - 1e-3, 1e-12);
    c.leak(1e12);  // Clamped at empty, never negative.
    EXPECT_EQ(c.storedEnergyJ(), 0.0);

    Capacitor ideal = Capacitor::sizedFor(1.0);  // No leakage term.
    ideal.leak(1e12);
    EXPECT_EQ(ideal.storedEnergyJ(), 1.0);
}

TEST(Capacitor, PresetsRoundTrip)
{
    EXPECT_EQ(capacitorPresetFor("ideal").tech, "ideal");
    EXPECT_EQ(capacitorPresetFor("").tech, "ideal");
    EXPECT_EQ(capacitorPresetFor("supercap").tech, "supercap");
    EXPECT_EQ(capacitorPresetFor("li-thin").tech, "li-thin");
}

TEST(CapacitorDeath, UnknownTechIsFatal)
{
    EXPECT_EXIT(capacitorPresetFor("plutonium"),
                ::testing::ExitedWithCode(1), "unknown battery tech");
}

TEST(CapacitorDeath, BadDerateIsFatal)
{
    CapacitorParams p;
    p.capacitanceDerate = 0.0;
    EXPECT_EXIT(Capacitor::sizedFor(1.0, p),
                ::testing::ExitedWithCode(1), "capacitanceDerate");
    p.capacitanceDerate = 1.5;
    EXPECT_EXIT(Capacitor::sizedFor(1.0, p),
                ::testing::ExitedWithCode(1), "capacitanceDerate");
}

TEST(CapacitorDeath, InvertedVoltageWindowIsFatal)
{
    CapacitorParams p;
    p.ratedVoltage = 1.0;
    p.cutoffVoltage = 2.0;
    EXPECT_EXIT(Capacitor::sizedFor(1.0, p),
                ::testing::ExitedWithCode(1), "must exceed cutoff");
}
