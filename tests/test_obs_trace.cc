/**
 * @file
 * Unit tests for the Perfetto-compatible event tracer: recording,
 * (ts, seq) sorting, bounded capacity, session scoping, the macro
 * no-op path, and the shape of the emitted trace_event JSON.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace.hh"

using namespace secpb;
using namespace secpb::obs;

TEST(ObsTrace, RecordsSpansInstantsAndCounters)
{
    Tracer t;
    t.span("secpb", "drain", 100, 150, 3);
    t.instant("secpb", "pb_full", 120);
    t.counter("sampler", "occupancy", 130, 17.5);

    ASSERT_EQ(t.numEvents(), 3u);
    const TraceEvent &span = t.events()[0];
    EXPECT_EQ(span.phase, TraceEvent::Phase::Span);
    EXPECT_EQ(span.ts, 100u);
    EXPECT_EQ(span.dur, 50u);
    EXPECT_EQ(span.pid, 3u);
    EXPECT_EQ(span.name, "drain");

    const TraceEvent &inst = t.events()[1];
    EXPECT_EQ(inst.phase, TraceEvent::Phase::Instant);
    EXPECT_EQ(inst.pid, 0u);

    const TraceEvent &ctr = t.events()[2];
    EXPECT_EQ(ctr.phase, TraceEvent::Phase::Counter);
    EXPECT_DOUBLE_EQ(ctr.counterValue, 17.5);
}

TEST(ObsTrace, InternsComponentTids)
{
    Tracer t;
    t.instant("secpb", "a", 1);
    t.instant("bmt", "b", 2);
    t.instant("secpb", "c", 3);
    EXPECT_EQ(t.events()[0].tid, t.events()[2].tid);
    EXPECT_NE(t.events()[0].tid, t.events()[1].tid);
    ASSERT_EQ(t.components().size(), 2u);
    EXPECT_EQ(t.components()[0], "secpb");
    EXPECT_EQ(t.components()[1], "bmt");
}

TEST(ObsTrace, SortedEventsOrderByTickThenSeq)
{
    Tracer t;
    t.instant("c", "late", 50);
    t.instant("c", "early", 10);
    t.instant("c", "tie_first", 30);
    t.instant("c", "tie_second", 30);

    const auto sorted = t.sortedEvents();
    ASSERT_EQ(sorted.size(), 4u);
    EXPECT_EQ(sorted[0].name, "early");
    EXPECT_EQ(sorted[1].name, "tie_first");   // same tick: seq breaks the tie
    EXPECT_EQ(sorted[2].name, "tie_second");
    EXPECT_EQ(sorted[3].name, "late");
}

TEST(ObsTrace, CapacityBoundsBufferAndCountsDrops)
{
    Tracer t(/*capacity=*/4);
    for (int i = 0; i < 10; ++i)
        t.instant("c", "e", static_cast<Tick>(i));
    EXPECT_EQ(t.numEvents(), 4u);
    EXPECT_EQ(t.numDropped(), 6u);

    t.clear();
    EXPECT_EQ(t.numEvents(), 0u);
    EXPECT_EQ(t.numDropped(), 0u);
    t.instant("c", "again", 1);
    EXPECT_EQ(t.numEvents(), 1u);
}

TEST(ObsTrace, MacrosAreNoOpsWithoutSession)
{
    ASSERT_EQ(current(), nullptr);
    // Must not crash or record anywhere.
    TRACE_SPAN("c", "s", 0, 10);
    TRACE_INSTANT("c", "i", 5);
    TRACE_COUNTER("c", "v", 5, 1.0);
    EXPECT_EQ(current(), nullptr);
}

TEST(ObsTrace, SessionInstallsAndMacrosRecord)
{
    Tracer t;
    {
        TraceSession session(&t);
        EXPECT_EQ(current(), &t);
        TRACE_SPAN("c", "s", 0, 10);
        TRACE_INSTANT_P("c", "i", 5, 7);
    }
    EXPECT_EQ(current(), nullptr);
    ASSERT_EQ(t.numEvents(), 2u);
    EXPECT_EQ(t.events()[1].pid, 7u);
}

TEST(ObsTrace, SessionsNestAndRestore)
{
    Tracer outer, inner;
    TraceSession a(&outer);
    {
        TraceSession b(&inner);
        EXPECT_EQ(current(), &inner);
        TRACE_INSTANT("c", "inner_only", 1);
    }
    EXPECT_EQ(current(), &outer);
    TRACE_INSTANT("c", "outer_only", 2);
    EXPECT_EQ(inner.numEvents(), 1u);
    EXPECT_EQ(outer.numEvents(), 1u);
    EXPECT_EQ(inner.events()[0].name, "inner_only");
    EXPECT_EQ(outer.events()[0].name, "outer_only");
}

TEST(ObsTrace, JsonHasMetadataAndSortedEvents)
{
    Tracer t;
    t.span("secpb", "drain", 20, 40, 1);
    t.instant("bmt", "merge", 10);

    std::ostringstream os;
    t.writeJson(os);
    const std::string json = os.str();

    EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
    // Metadata names both the process (asid) and each component track.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("asid 0"), std::string::npos);
    EXPECT_NE(json.find("asid 1"), std::string::npos);
    EXPECT_NE(json.find("thread_name"), std::string::npos);
    EXPECT_NE(json.find("\"secpb\""), std::string::npos);
    EXPECT_NE(json.find("\"bmt\""), std::string::npos);
    // Events are sorted: the tick-10 instant precedes the tick-20 span.
    EXPECT_LT(json.find("\"merge\""), json.find("\"drain\""));
    // Span carries a duration; instant carries the scope marker.
    EXPECT_NE(json.find("\"dur\": 20"), std::string::npos);
    EXPECT_NE(json.find("\"s\": \"t\""), std::string::npos);
    // No drops -> no droppedEvents field.
    EXPECT_EQ(json.find("droppedEvents"), std::string::npos);
}

TEST(ObsTrace, JsonReportsDroppedEvents)
{
    Tracer t(/*capacity=*/1);
    t.instant("c", "kept", 1);
    t.instant("c", "dropped", 2);
    std::ostringstream os;
    t.writeJson(os);
    EXPECT_NE(os.str().find("\"droppedEvents\": 1"), std::string::npos);
}

TEST(ObsTraceDeath, BackwardsSpanPanics)
{
    Tracer t;
    EXPECT_DEATH(t.span("c", "bad", 10, 5), "ends before it starts");
}
