/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <numeric>

#include "sim/event_queue.hh"

using namespace secpb;

TEST(EventQueue, StartsAtTickZeroAndEmpty)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTick(), MaxTick);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 50u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            eq.scheduleIn(7, chain);
    };
    eq.schedule(0, chain);
    eq.run();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(eq.curTick(), 28u);
}

TEST(EventQueue, SchedulingAtCurrentTickIsAllowed)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(10, [&] {
        eq.schedule(eq.curTick(), [&] { inner = true; });
    });
    eq.run();
    EXPECT_TRUE(inner);
}

TEST(EventQueue, StepExecutesOneEvent)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] { ++fired; });
    eq.schedule(2, [&] { ++fired; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(fired, 2);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueue, ResetClearsState)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    eq.schedule(20, [] {});
    eq.reset();
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.numExecuted(), 0u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 42; ++i)
        eq.schedule(static_cast<Tick>(i), [] {});
    eq.run();
    EXPECT_EQ(eq.numExecuted(), 42u);
}

TEST(EventQueue, RunAdvancesToLimitWhenQueueDrains)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    // The queue drains at tick 10, but the caller asked to simulate up to
    // 50: time must advance to the limit, not stall at the last event.
    EXPECT_EQ(eq.run(50), 50u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 50u);
    // An empty queue advances to an explicit limit too.
    EXPECT_EQ(eq.run(80), 80u);
    EXPECT_EQ(eq.curTick(), 80u);
    // Open-ended runs still finish at the last executed event.
    eq.schedule(90, [&] { ++fired; });
    eq.run();
    EXPECT_EQ(eq.curTick(), 90u);
}

TEST(EventQueue, LargeCapturesFallBackToHeap)
{
    EventQueue eq;
    std::array<std::uint64_t, 16> payload{};  // 128 B > inline buffer
    std::iota(payload.begin(), payload.end(), 1u);
    std::uint64_t sum = 0;
    eq.schedule(1, [payload, &sum] {
        for (std::uint64_t v : payload)
            sum += v;
    });
    eq.run();
    EXPECT_EQ(sum, 16u * 17u / 2u);
}

TEST(EventQueue, MoveOnlyCallablesAreSchedulable)
{
    EventQueue eq;
    auto p = std::make_unique<int>(41);
    int got = 0;
    eq.schedule(1, [p = std::move(p), &got] { got = *p + 1; });
    eq.run();
    EXPECT_EQ(got, 42);
}

TEST(EventQueue, CallbackMoveLeavesSourceEmpty)
{
    EventCallback a = [] {};
    EXPECT_TRUE(static_cast<bool>(a));
    EventCallback b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b = nullptr;
    EXPECT_FALSE(static_cast<bool>(b));
}

TEST(EventQueue, PoolRecyclesSlotsAcrossWaves)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int w = 0; w < 100; ++w) {
        const Tick base = eq.curTick();
        for (int i = 0; i < 64; ++i)
            eq.schedule(base + 1 + static_cast<Tick>(i),
                        [&fired] { ++fired; });
        eq.run();
    }
    EXPECT_EQ(fired, 6400u);
    EXPECT_EQ(eq.numExecuted(), 6400u);
}
