/**
 * @file
 * Unit tests for the base utilities: address arithmetic, clock
 * conversion, csprintf, block-data helpers, persist-buffer entries.
 */

#include <gtest/gtest.h>

#include "mem/block_data.hh"
#include "pb/entry.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

using namespace secpb;

TEST(Types, BlockArithmetic)
{
    EXPECT_EQ(blockAlign(0x1234), 0x1200u);
    EXPECT_EQ(blockOffset(0x1234), 0x34u);
    EXPECT_EQ(blockIndex(0x1234), 0x48u);
    EXPECT_EQ(blockAlign(0x1200), 0x1200u);
}

TEST(Types, ClockConversion)
{
    ClockInfo clk;  // 4 GHz
    EXPECT_EQ(clk.nsToCycles(55.0), 220u);   // Table I PCM read
    EXPECT_EQ(clk.nsToCycles(150.0), 600u);  // Table I PCM write
    EXPECT_EQ(clk.nsToCycles(0.0), 0u);
    EXPECT_EQ(clk.nsToCycles(0.1), 1u);      // rounds up
    ClockInfo slow;
    slow.coreFreqMhz = 1000.0;
    EXPECT_EQ(slow.nsToCycles(55.0), 55u);
}

TEST(Logging, CsprintfFormats)
{
    EXPECT_EQ(csprintf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(csprintf("empty"), "empty");
    // Long strings are not truncated.
    const std::string big(500, 'a');
    EXPECT_EQ(csprintf("%s", big.c_str()).size(), 500u);
}

TEST(Logging, QuietSuppression)
{
    const bool was = quietLogging();
    setQuietLogging(true);
    EXPECT_TRUE(quietLogging());
    setQuietLogging(was);
}

TEST(BlockData, WordAccessors)
{
    BlockData b = zeroBlock();
    setBlockWord(b, 3, 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(blockWord(b, 3), 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(blockWord(b, 2), 0u);
    EXPECT_EQ(blockWord(b, 4), 0u);
    EXPECT_EQ(b[24], 0x0Du);  // little-endian byte layout
}

TEST(BlockData, XorIsInvolution)
{
    BlockData a, b;
    for (unsigned i = 0; i < BlockSize; ++i) {
        a[i] = static_cast<std::uint8_t>(i * 7);
        b[i] = static_cast<std::uint8_t>(i * 13 + 5);
    }
    EXPECT_EQ(xorBlocks(xorBlocks(a, b), b), a);
}

TEST(PbEntry, ClearResetsEverything)
{
    PbEntry e;
    e.valid = true;
    e.addr = 0x1000;
    e.asid = 3;
    e.numWrites = 9;
    e.vData = e.vCtr = e.vOtp = e.vCt = e.vMac = e.vBmt = true;
    e.ctrIncremented = true;
    e.draining = true;
    e.clear();
    EXPECT_FALSE(e.valid);
    EXPECT_EQ(e.addr, InvalidAddr);
    EXPECT_EQ(e.asid, 0u);
    EXPECT_EQ(e.numWrites, 0u);
    EXPECT_FALSE(e.vData);
    EXPECT_FALSE(e.draining);
    EXPECT_FALSE(e.ctrIncremented);
}

TEST(PbEntry, CompleteRequiresAllSixBits)
{
    PbEntry e;
    e.vData = e.vCtr = e.vOtp = e.vCt = e.vMac = true;
    EXPECT_FALSE(e.complete());
    e.vBmt = true;
    EXPECT_TRUE(e.complete());
    e.vOtp = false;
    EXPECT_FALSE(e.complete());
}
