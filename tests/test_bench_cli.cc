/**
 * @file
 * Tests for the shared bench harness: the hardened envU64 (trailing
 * garbage, signs, and overflow are fatal, never a silent truncation) and
 * the BenchCli filter/parse helpers.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "../bench/bench_common.hh"

using namespace secpb;
using namespace secpb::bench;

namespace
{

struct EnvGuard
{
    explicit EnvGuard(const char *name) : _name(name) {}
    ~EnvGuard() { unsetenv(_name); }
    const char *_name;
};

} // namespace

TEST(EnvU64, FallbackWhenUnsetOrEmpty)
{
    unsetenv("SECPB_TEST_ENV");
    EXPECT_EQ(envU64("SECPB_TEST_ENV", 42), 42u);
    EnvGuard guard("SECPB_TEST_ENV");
    setenv("SECPB_TEST_ENV", "", 1);
    EXPECT_EQ(envU64("SECPB_TEST_ENV", 42), 42u);
}

TEST(EnvU64, ParsesPlainDecimal)
{
    EnvGuard guard("SECPB_TEST_ENV");
    setenv("SECPB_TEST_ENV", "300000", 1);
    EXPECT_EQ(envU64("SECPB_TEST_ENV", 0), 300000u);
    setenv("SECPB_TEST_ENV", "18446744073709551615", 1);
    EXPECT_EQ(envU64("SECPB_TEST_ENV", 0), UINT64_MAX);
}

using EnvU64Death = ::testing::Test;

TEST(EnvU64Death, TrailingGarbageIsFatal)
{
    EnvGuard guard("SECPB_TEST_ENV");
    setenv("SECPB_TEST_ENV", "300k", 1);
    EXPECT_EXIT(envU64("SECPB_TEST_ENV", 0),
                ::testing::ExitedWithCode(1), "not a decimal integer");
}

TEST(EnvU64Death, NegativeIsFatalNotWrapped)
{
    EnvGuard guard("SECPB_TEST_ENV");
    setenv("SECPB_TEST_ENV", "-1", 1);
    EXPECT_EXIT(envU64("SECPB_TEST_ENV", 0),
                ::testing::ExitedWithCode(1), "non-negative");
}

TEST(EnvU64Death, OverflowIsFatalNotTruncated)
{
    EnvGuard guard("SECPB_TEST_ENV");
    setenv("SECPB_TEST_ENV", "99999999999999999999999", 1);
    EXPECT_EXIT(envU64("SECPB_TEST_ENV", 0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(EnvU64Death, NonNumericIsFatal)
{
    EnvGuard guard("SECPB_TEST_ENV");
    setenv("SECPB_TEST_ENV", "lots", 1);
    EXPECT_EXIT(envU64("SECPB_TEST_ENV", 0),
                ::testing::ExitedWithCode(1), "not a decimal integer");
}

TEST(BenchCli, SplitCommas)
{
    EXPECT_EQ(BenchCli::splitCommas("a,b,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(BenchCli::splitCommas("one"),
              (std::vector<std::string>{"one"}));
    EXPECT_EQ(BenchCli::splitCommas(""), std::vector<std::string>{});
    EXPECT_EQ(BenchCli::splitCommas("a,,b"),
              (std::vector<std::string>{"a", "b"}));
}

TEST(BenchCli, ParseFlagsOverrideEnv)
{
    EnvGuard guard("SECPB_BENCH_JOBS");
    setenv("SECPB_BENCH_JOBS", "3", 1);
    const char *argv[] = {"bench",     "--jobs",   "5",
                          "--scheme",  "CM,COBCM", "--profile",
                          "gamess",    "--instr",  "1234",
                          "--seed",    "9",        "--json",
                          "/tmp/x.json"};
    BenchCli cli = BenchCli::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv), "bench");
    EXPECT_EQ(cli.jobs, 5u);
    EXPECT_EQ(cli.instructions, 1234u);
    EXPECT_EQ(cli.seed, 9u);
    EXPECT_EQ(cli.jsonPath, "/tmp/x.json");
    EXPECT_TRUE(cli.wantScheme(Scheme::Cm));
    EXPECT_TRUE(cli.wantScheme(Scheme::Cobcm));
    EXPECT_FALSE(cli.wantScheme(Scheme::NoGap));
    EXPECT_TRUE(cli.wantProfile("gamess"));
    EXPECT_FALSE(cli.wantProfile("gcc"));
    ASSERT_EQ(cli.profilesToRun().size(), 1u);
    EXPECT_EQ(cli.profilesToRun()[0].name, "gamess");
}

TEST(BenchCli, EnvFallbacksAndDefaults)
{
    EnvGuard j("SECPB_BENCH_JOBS"), p("SECPB_BENCH_JSON");
    setenv("SECPB_BENCH_JOBS", "7", 1);
    setenv("SECPB_BENCH_JSON", "/tmp/env.json", 1);
    const char *argv[] = {"bench"};
    BenchCli cli = BenchCli::parse(1, const_cast<char **>(argv), "bench");
    EXPECT_EQ(cli.jobs, 7u);
    EXPECT_EQ(cli.jsonPath, "/tmp/env.json");
    // Empty filters pass everything.
    EXPECT_TRUE(cli.wantScheme(Scheme::Sp));
    EXPECT_TRUE(cli.wantProfile("anything"));
}

TEST(BenchCli, ObservabilityFlagsParse)
{
    const char *argv[] = {"bench",        "--trace-out", "/tmp/t.json",
                          "--sample-every", "2500",      "--stats"};
    BenchCli cli = BenchCli::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv), "bench");
    EXPECT_EQ(cli.traceOut, "/tmp/t.json");
    EXPECT_EQ(cli.sampleEvery, 2500u);
    EXPECT_TRUE(cli.captureStats);
}

TEST(BenchCli, ObservabilityDefaultsOff)
{
    const char *argv[] = {"bench"};
    BenchCli cli = BenchCli::parse(1, const_cast<char **>(argv), "bench");
    EXPECT_TRUE(cli.traceOut.empty());
    EXPECT_EQ(cli.sampleEvery, 0u);
    EXPECT_FALSE(cli.captureStats);
}

TEST(BenchCli, DebugFlagEnablesKnownFlags)
{
    ASSERT_FALSE(debug::enabled("Sampler"));
    const char *argv[] = {"bench", "--debug", "Sampler,Fault"};
    BenchCli::parse(3, const_cast<char **>(argv), "bench");
    EXPECT_TRUE(debug::enabled("Sampler"));
    EXPECT_TRUE(debug::enabled("Fault"));
    debug::clearAll();
    EXPECT_FALSE(debug::enabled("Sampler"));
}

TEST(BenchCliDeath, UnknownDebugFlagIsFatal)
{
    const char *argv[] = {"bench", "--debug", "Bogus"};
    EXPECT_EXIT(BenchCli::parse(3, const_cast<char **>(argv), "bench"),
                ::testing::ExitedWithCode(1), "unknown --debug flag");
}

TEST(BenchCliDeath, UnknownFlagIsFatal)
{
    const char *argv[] = {"bench", "--frobnicate"};
    EXPECT_EXIT(BenchCli::parse(2, const_cast<char **>(argv), "bench"),
                ::testing::ExitedWithCode(1), "unknown flag");
}

TEST(BenchCliDeath, UnknownProfileFilterIsFatal)
{
    const char *argv[] = {"bench", "--profile", "nonesuch"};
    EXPECT_EXIT(BenchCli::parse(3, const_cast<char **>(argv), "bench"),
                ::testing::ExitedWithCode(1), "");
}

TEST(BenchCli, BatteryFlagsParse)
{
    const char *argv[] = {"bench",           "--battery-tech", "supercap",
                          "--battery-derate", "0.8",
                          "--power-schedule", "cycles=3,seed=11"};
    BenchCli cli = BenchCli::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv), "bench");
    EXPECT_EQ(cli.batteryTech, "supercap");
    EXPECT_DOUBLE_EQ(cli.batteryDerate, 0.8);
    EXPECT_EQ(cli.powerSchedule, "cycles=3,seed=11");
    const CapacitorParams p = cli.batteryParams();
    EXPECT_EQ(p.tech, "supercap");
    EXPECT_DOUBLE_EQ(p.capacitanceDerate, 0.8);
    const PowerScheduleSpec spec =
        PowerScheduleSpec::parse(cli.powerSchedule);
    EXPECT_EQ(spec.cycles, 3u);
    EXPECT_EQ(spec.seed, 11u);
}

TEST(BenchCli, BatteryDefaultsIdealFullCapacity)
{
    const char *argv[] = {"bench"};
    BenchCli cli = BenchCli::parse(1, const_cast<char **>(argv), "bench");
    EXPECT_EQ(cli.batteryTech, "ideal");
    EXPECT_DOUBLE_EQ(cli.batteryDerate, 1.0);
    EXPECT_TRUE(cli.powerSchedule.empty());
}

TEST(BenchCli, BatteryEnvFallbacks)
{
    EnvGuard t("SECPB_BENCH_BATTERY_TECH");
    EnvGuard d("SECPB_BENCH_BATTERY_DERATE");
    EnvGuard s("SECPB_BENCH_POWER_SCHEDULE");
    setenv("SECPB_BENCH_BATTERY_TECH", "li-thin", 1);
    setenv("SECPB_BENCH_BATTERY_DERATE", "0.5", 1);
    setenv("SECPB_BENCH_POWER_SCHEDULE", "cycles=2", 1);
    const char *argv[] = {"bench"};
    BenchCli cli = BenchCli::parse(1, const_cast<char **>(argv), "bench");
    EXPECT_EQ(cli.batteryTech, "li-thin");
    EXPECT_DOUBLE_EQ(cli.batteryDerate, 0.5);
    EXPECT_EQ(cli.powerSchedule, "cycles=2");
}

TEST(BenchCliDeath, UnknownBatteryTechIsFatal)
{
    const char *argv[] = {"bench", "--battery-tech", "fusion"};
    EXPECT_EXIT(BenchCli::parse(3, const_cast<char **>(argv), "bench"),
                ::testing::ExitedWithCode(1), "unknown battery tech");
}

TEST(BenchCliDeath, OutOfRangeDerateIsFatal)
{
    const char *argv[] = {"bench", "--battery-derate", "1.5"};
    EXPECT_EXIT(BenchCli::parse(3, const_cast<char **>(argv), "bench"),
                ::testing::ExitedWithCode(1), "out of \\(0, 1\\]");
}

TEST(BenchCliDeath, MalformedPowerScheduleIsFatal)
{
    const char *argv[] = {"bench", "--power-schedule", "cycles=3,warp=9"};
    EXPECT_EXIT(BenchCli::parse(3, const_cast<char **>(argv), "bench"),
                ::testing::ExitedWithCode(1), "unknown key");
}

TEST(EnvDouble, StrictParse)
{
    EnvGuard guard("SECPB_TEST_ENVD");
    unsetenv("SECPB_TEST_ENVD");
    EXPECT_DOUBLE_EQ(envDouble("SECPB_TEST_ENVD", 0.25), 0.25);
    setenv("SECPB_TEST_ENVD", "0.75", 1);
    EXPECT_DOUBLE_EQ(envDouble("SECPB_TEST_ENVD", 0.25), 0.75);
}

TEST(EnvDoubleDeath, TrailingGarbageIsFatal)
{
    EnvGuard guard("SECPB_TEST_ENVD");
    setenv("SECPB_TEST_ENVD", "0.5x", 1);
    EXPECT_EXIT(envDouble("SECPB_TEST_ENVD", 0.0),
                ::testing::ExitedWithCode(1), "not a decimal number");
}
