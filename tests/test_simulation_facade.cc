/**
 * @file
 * Conformance tests for the Simulation facade and SimulationSpec CLI:
 * the facade must be a zero-cost veneer (cores == 1 byte-identical to a
 * direct SecPbSystem, cores > 1 to a direct MultiCoreSystem), and
 * SimulationSpec::fromCli must consume exactly its own flags from argv,
 * compact the survivors in place, and validate eagerly.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <initializer_list>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

std::string
fingerprint(const SimulationResult &r)
{
    std::ostringstream os;
    os.precision(17);
    r.visitFields([&](const char *k, auto v) { os << k << '=' << v << '\n'; });
    return os.str();
}

std::string
statsDumpOf(const auto &machine)
{
    std::ostringstream os;
    machine.dumpStats(os);
    return os.str();
}

/** Mutable argc/argv pair for exercising fromCli's in-place compaction. */
struct Argv
{
    std::vector<std::string> store;
    std::vector<char *> ptrs;
    int argc;

    explicit Argv(std::initializer_list<const char *> args)
    {
        for (const char *a : args)
            store.emplace_back(a);
        for (std::string &s : store)
            ptrs.push_back(s.data());
        ptrs.push_back(nullptr);
        argc = static_cast<int>(store.size());
    }

    char **data() { return ptrs.data(); }
};

/** The deprecated env fallbacks must not leak into CLI tests. */
void
clearSpecEnv()
{
    for (const char *v :
         {"SECPB_BENCH_INSTR", "SECPB_BENCH_SEED", "SECPB_BENCH_WORKLOAD",
          "SECPB_BENCH_TRACE_IN", "SECPB_BENCH_TRACE_RECORD",
          "SECPB_BENCH_BATTERY_TECH", "SECPB_BENCH_BATTERY_DERATE",
          "SECPB_BENCH_POWER_SCHEDULE"})
        unsetenv(v);
}

} // namespace

TEST(SimulationFacade, SingleCoreMatchesDirectSystem)
{
    const BenchmarkProfile &prof = profileByName("gcc");
    const SystemConfig cfg = SecPbSystem::configFor(Scheme::Cobcm, prof);

    SecPbSystem direct(cfg);
    SyntheticGenerator dgen(prof, 8'000, 42);
    const SimulationResult dres = direct.run(dgen);

    SimulationSpec spec;
    spec.base = cfg;
    Simulation sim(spec);
    ASSERT_FALSE(sim.multiCore());
    EXPECT_EQ(sim.numCores(), 1u);
    SyntheticGenerator fgen(prof, 8'000, 42);
    const SimulationResult fres = sim.run(fgen);

    EXPECT_EQ(fingerprint(fres), fingerprint(dres));
    EXPECT_EQ(statsDumpOf(sim), statsDumpOf(direct));
}

TEST(SimulationFacade, MultiCoreMatchesDirectMultiSystem)
{
    SimulationSpec spec;
    spec.base.scheme = Scheme::Cobcm;
    spec.base.secpb.numEntries = 8;
    spec.base.pmDataBytes = 1ULL << 30;
    spec.cores = 2;

    auto makeGens = [] {
        auto g0 = std::make_unique<ScriptedGenerator>();
        auto g1 = std::make_unique<ScriptedGenerator>();
        g0->store(0x1000, 0xAA).instr(200);
        g1->instr(200).store(0x1000, 0xBB);
        std::vector<std::unique_ptr<ScriptedGenerator>> owned;
        owned.push_back(std::move(g0));
        owned.push_back(std::move(g1));
        return owned;
    };

    MultiCoreSystem direct(spec.multiCoreConfig());
    auto dOwned = makeGens();
    const MultiCoreResult dres = direct.run({dOwned[0].get(), dOwned[1].get()});

    Simulation sim(spec);
    ASSERT_TRUE(sim.multiCore());
    EXPECT_EQ(sim.numCores(), 2u);
    auto fOwned = makeGens();
    const MultiCoreResult fres = sim.run({fOwned[0].get(), fOwned[1].get()});

    EXPECT_EQ(fres.migrations, dres.migrations);
    EXPECT_EQ(fres.execTicks, dres.execTicks);
    ASSERT_EQ(fres.perCore.size(), dres.perCore.size());
    for (std::size_t c = 0; c < fres.perCore.size(); ++c)
        EXPECT_EQ(fingerprint(fres.perCore[c]), fingerprint(dres.perCore[c]));
    EXPECT_EQ(statsDumpOf(sim), statsDumpOf(direct));
}

TEST(SimulationFacade, SingleCoreVectorRunWrapsMultiResult)
{
    // Drivers that always pass a generator vector (one per core) work
    // unchanged on a single-core spec: the facade wraps the result.
    SimulationSpec spec;
    spec.base.scheme = Scheme::Cobcm;
    Simulation sim(spec);
    ScriptedGenerator gen;
    for (int i = 0; i < 8; ++i)
        gen.store(i * BlockSize, 0xD0 + i).instr(50);
    const MultiCoreResult r = sim.run(std::vector<WorkloadGenerator *>{&gen});
    ASSERT_EQ(r.perCore.size(), 1u);
    EXPECT_EQ(r.perCore[0].persists, 8u);
    EXPECT_EQ(r.totalInstructions, r.perCore[0].instructions);
    EXPECT_EQ(r.execTicks, r.perCore[0].execTicks);
}

TEST(SimulationFacade, WrongMachineAccessorPanics)
{
    SimulationSpec single;
    Simulation s(single);
    EXPECT_DEATH(s.multi(), "single-core simulation");

    SimulationSpec multi;
    multi.cores = 2;
    Simulation m(multi);
    EXPECT_DEATH(m.system(), "2-core simulation");
}

TEST(SimulationFacade, GeneratorArityMismatchPanics)
{
    SimulationSpec spec;
    Simulation sim(spec);
    ScriptedGenerator a, b;
    std::vector<WorkloadGenerator *> two{&a, &b};
    EXPECT_DEATH(sim.run(two), "got 2 generators");
}

TEST(SimulationSpecCli, ConsumesOwnFlagsAndCompactsSurvivors)
{
    clearSpecEnv();
    Argv av{"prog",   "--jobs",   "3",      "--instr", "5000",
            "--seed", "9",        "--cores", "2",      "--shards",
            "4",      "--json",   "out.json"};
    const SimulationSpec spec =
        SimulationSpec::fromCli(av.argc, av.data(), "test");

    EXPECT_EQ(spec.instructions, 5'000u);
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_EQ(spec.cores, 2u);
    EXPECT_EQ(spec.shards, 4u);

    // Only the caller-owned flags survive, order preserved, array
    // re-terminated.
    ASSERT_EQ(av.argc, 5);
    EXPECT_STREQ(av.data()[0], "prog");
    EXPECT_STREQ(av.data()[1], "--jobs");
    EXPECT_STREQ(av.data()[2], "3");
    EXPECT_STREQ(av.data()[3], "--json");
    EXPECT_STREQ(av.data()[4], "out.json");
    EXPECT_EQ(av.data()[5], nullptr);
}

TEST(SimulationSpecCli, DefaultsWhenNothingGiven)
{
    clearSpecEnv();
    Argv av{"prog"};
    const SimulationSpec spec =
        SimulationSpec::fromCli(av.argc, av.data(), "test");
    EXPECT_EQ(spec.instructions, 300'000u);
    EXPECT_EQ(spec.seed, 7u);
    EXPECT_EQ(spec.cores, 1u);
    EXPECT_EQ(spec.shards, 1u);
    EXPECT_EQ(spec.batteryTech, "ideal");
    EXPECT_DOUBLE_EQ(spec.batteryDerate, 1.0);
    EXPECT_TRUE(spec.workload.empty());
    EXPECT_EQ(av.argc, 1);
}

TEST(SimulationSpecCli, TraceInIsReplayWorkloadSugar)
{
    clearSpecEnv();
    Argv av{"prog", "--trace-in", "/tmp/ops.trace"};
    const SimulationSpec spec =
        SimulationSpec::fromCli(av.argc, av.data(), "test");
    EXPECT_EQ(spec.workload, "replay:file=/tmp/ops.trace");
}

TEST(SimulationSpecCli, BadValuesDieEagerly)
{
    clearSpecEnv();
    auto parse = [](std::initializer_list<const char *> args) {
        Argv av(args);
        SimulationSpec::fromCli(av.argc, av.data(), "test");
    };
    EXPECT_DEATH(parse({"prog", "--shards", "0"}), "--shards must be >= 1");
    EXPECT_DEATH(parse({"prog", "--workload", "no-such-workload"}),
                 "unknown workload");
    EXPECT_DEATH(parse({"prog", "--trace-in", "x.trc", "--workload",
                        "kv_wal"}),
                 "mutually exclusive");
}
