/**
 * @file
 * The server-scale workload front end: registry grammar (loud failures
 * on typos), bit-identical generator streams per (spec, budget, seed)
 * triple, the traffic shapes each generator promises (WAL barriers,
 * checkpoint storms, commit trains, panic dumps, multi-tenant ASID
 * churn), Zipfian skew sanity, the open-loop burst wrapper, sweep
 * determinism under --jobs N with registry-selected workloads, and a
 * crash-consistency fault slice over the KV/WAL workload.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/system.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"
#include "fault/injector.hh"
#include "sim/logging.hh"
#include "workload/generators.hh"
#include "workload/registry.hh"
#include "workload/zipf.hh"

using namespace secpb;

namespace
{

std::vector<TraceOp>
drain(WorkloadGenerator &gen)
{
    std::vector<TraceOp> ops;
    TraceOp op;
    while (gen.next(op))
        ops.push_back(op);
    return ops;
}

bool
sameOps(const std::vector<TraceOp> &a, const std::vector<TraceOp> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].kind != b[i].kind || a[i].count != b[i].count ||
            a[i].addr != b[i].addr || a[i].value != b[i].value ||
            a[i].level != b[i].level || a[i].asid != b[i].asid)
            return false;
    }
    return true;
}

/** Small-parameter variants of every generator family. */
const char *const kSpecs[] = {
    "kv_wal:keys=256,ckpt_every=64,ckpt_blocks=8",
    "fs_journal:meta_blocks=128,commit_every=2",
    "pstore:dump_every=8,dump_blocks=16",
    "zipf_mix:tenants=64,keys=8",
    "kv_wal:keys=128,burst_period=300,burst_duty=0.5",
};

} // namespace

// ---------------------------------------------------------------------
// Registry grammar.
// ---------------------------------------------------------------------

TEST(WorkloadSpec, ParseAndCanonicalRoundTrip)
{
    const WorkloadSpec spec =
        WorkloadSpec::parse("kv_wal:puts=0.8,keys=1024");
    EXPECT_EQ(spec.name, "kv_wal");
    ASSERT_EQ(spec.params.size(), 2u);
    EXPECT_TRUE(spec.has("puts"));
    EXPECT_EQ(spec.get("puts"), "0.8");
    EXPECT_EQ(spec.get("keys"), "1024");
    EXPECT_EQ(spec.get("absent", "x"), "x");
    EXPECT_EQ(spec.canonical(), "kv_wal:puts=0.8,keys=1024");

    const WorkloadSpec bare = WorkloadSpec::parse("pstore");
    EXPECT_EQ(bare.name, "pstore");
    EXPECT_TRUE(bare.params.empty());
    EXPECT_EQ(bare.canonical(), "pstore");
}

TEST(WorkloadSpec, RegistryKnowsItsNames)
{
    for (const std::string &name : registeredWorkloadNames())
        EXPECT_TRUE(isRegisteredWorkload(name)) << name;
    EXPECT_FALSE(isRegisteredWorkload("ycsb"));
    EXPECT_FALSE(isRegisteredWorkload(""));
}

TEST(WorkloadSpecDeath, TyposAreFatalNotIgnored)
{
    setQuietLogging(true);
    // An unknown name or key must never silently run a default workload.
    EXPECT_DEATH(makeWorkload("ycsb", 1000, 1), "unknown workload");
    EXPECT_DEATH(makeWorkload("kv_wal:putz=0.8", 1000, 1),
                 "does not take a parameter");
    EXPECT_DEATH(WorkloadSpec::parse("kv_wal:keys=1,keys=2"),
                 "duplicate parameter");
    EXPECT_DEATH(WorkloadSpec::parse("kv_wal:keys"), "not key=value");
    EXPECT_DEATH(WorkloadSpec::parse(":keys=1"), "empty workload name");
    EXPECT_DEATH(makeWorkload("kv_wal:keys=many", 1000, 1),
                 "is not a number");
    EXPECT_DEATH(makeWorkload("kv_wal:keys=1.5", 1000, 1),
                 "whole count");
    EXPECT_DEATH(makeWorkload("kv_wal:burst_duty=0.5", 1000, 1),
                 "burst_period");
    EXPECT_DEATH(makeWorkload("replay", 1000, 1), "file=");
    EXPECT_DEATH(makeWorkload("spec", 1000, 1), "profile=");
}

// ---------------------------------------------------------------------
// Determinism: the contract every replay/record feature builds on.
// ---------------------------------------------------------------------

TEST(Generators, SameTripleSameStreamDifferentSeedDiverges)
{
    for (const char *spec : kSpecs) {
        SCOPED_TRACE(spec);
        auto a = makeWorkload(spec, 5000, 7);
        auto b = makeWorkload(spec, 5000, 7);
        auto c = makeWorkload(spec, 5000, 8);
        const auto sa = drain(*a);
        const auto sb = drain(*b);
        const auto sc = drain(*c);
        EXPECT_FALSE(sa.empty());
        EXPECT_TRUE(sameOps(sa, sb));
        EXPECT_FALSE(sameOps(sa, sc));
    }
}

TEST(Generators, BudgetBoundsTheStreamAndCountersMatchIt)
{
    const std::uint64_t budget = 5000;
    for (const char *spec : kSpecs) {
        SCOPED_TRACE(spec);
        auto gen = makeWorkload(spec, budget, 3);
        const auto ops = drain(*gen);

        WorkloadCounters tally;
        for (const TraceOp &op : ops)
            countOp(tally, op);

        ASSERT_NE(gen->counters(), nullptr);
        const WorkloadCounters &ctr = *gen->counters();
        EXPECT_EQ(ctr.ops, ops.size());
        EXPECT_EQ(ctr.instructions, tally.instructions);
        EXPECT_EQ(ctr.loads, tally.loads);
        EXPECT_EQ(ctr.stores, tally.stores);
        EXPECT_EQ(ctr.barriers, tally.barriers);

        // The budget ends the stream: reached, but only overshot by the
        // final scripted request, never by another refill. The burst
        // wrapper is exempt from the lower bound -- it strips the inner
        // think time, so its counted instruction mass is the idle gaps.
        if (std::string(spec).find("burst_period") == std::string::npos) {
            EXPECT_GE(ctr.instructions, budget);
        }
        EXPECT_LT(ctr.instructions, budget + 8192);
    }
}

// ---------------------------------------------------------------------
// Traffic shapes.
// ---------------------------------------------------------------------

TEST(KvWal, PutsCommitThroughTheLogAndCheckpointsStorm)
{
    KvWalParams p;
    p.keys = 256;
    p.checkpointEvery = 64;
    p.checkpointBlocks = 8;
    KvWalGenerator gen(p, 20000, 5);
    const auto ops = drain(gen);

    EXPECT_GT(gen.putsIssued(), 0u);
    EXPECT_GT(gen.checkpoints(), 0u);
    EXPECT_GT(gen.counters()->barriers, gen.checkpoints());

    for (const TraceOp &op : ops) {
        if (op.kind == TraceOp::Kind::Store) {
            EXPECT_EQ(op.addr % 8, 0u) << "misaligned store";
        }
    }

    // Every put persists at least its WAL record before the table
    // update, so stores dominate and barriers pace them.
    EXPECT_GT(gen.counters()->stores, gen.counters()->barriers);
}

TEST(Journal, FsJournalCommitsButNeverPanics)
{
    JournalParams p;
    p.metaBlocks = 128;
    p.commitEvery = 2;
    JournalGenerator gen(p, 20000, 5);
    drain(gen);
    EXPECT_GT(gen.commits(), 0u);
    EXPECT_EQ(gen.dumps(), 0u);
    EXPECT_GT(gen.counters()->barriers, 0u);
}

TEST(Journal, PstorePanicDumpsAreLongStoreRuns)
{
    JournalParams p;
    p.metaBlocks = 128;
    p.dumpEvery = 8;
    p.dumpBlocks = 16;
    JournalGenerator gen(p, 30000, 5);
    const auto ops = drain(gen);
    EXPECT_GT(gen.dumps(), 0u);

    // A panic dump writes dumpBlocks back-to-back blocks with no
    // intervening loads or think time -- find at least one such run.
    std::size_t run = 0, longest = 0;
    for (const TraceOp &op : ops) {
        if (op.kind == TraceOp::Kind::Store)
            longest = std::max(longest, ++run);
        else
            run = 0;
    }
    EXPECT_GE(longest, static_cast<std::size_t>(p.dumpBlocks));
}

TEST(ZipfMix, ThousandsOfTenantsChurnTheAsidSpace)
{
    ZipfMixParams p;
    p.tenants = 256;
    p.keysPerTenant = 8;
    ZipfMixGenerator gen(p, 30000, 5);
    const auto ops = drain(gen);

    std::set<std::uint32_t> asids;
    std::map<std::uint32_t, std::uint64_t> stores;
    for (const TraceOp &op : ops) {
        if (op.kind == TraceOp::Kind::Instr)
            continue;
        asids.insert(op.asid);
        if (op.kind == TraceOp::Kind::Store)
            ++stores[op.asid];
    }
    // A hot head dominates while a long tail keeps churning: tenant 0
    // (the most popular rank) sees far more traffic than a mid-tail
    // tenant, and well over a hundred distinct ASIDs show up.
    EXPECT_GT(asids.size(), 32u);
    EXPECT_LE(*asids.rbegin(), p.tenants - 1);
    EXPECT_GT(stores[0], stores[100] + 10);
}

// ---------------------------------------------------------------------
// Zipf sampler sanity.
// ---------------------------------------------------------------------

TEST(Zipf, HeadMassIsMonotoneAndSkewTracksTheExponent)
{
    const ZipfSampler skewed(1024, 1.2);
    const ZipfSampler mild(1024, 0.5);
    const ZipfSampler uniform(1024, 0.0);

    double prev = 0.0;
    for (std::uint64_t k : {1ull, 4ull, 16ull, 64ull, 1024ull}) {
        const double m = skewed.headMass(k);
        EXPECT_GT(m, prev);
        prev = m;
    }
    EXPECT_DOUBLE_EQ(skewed.headMass(1024), 1.0);
    EXPECT_EQ(skewed.headMass(0), 0.0);

    // More exponent, more head mass; exponent 0 degenerates to uniform.
    EXPECT_GT(skewed.headMass(10), mild.headMass(10));
    EXPECT_NEAR(uniform.headMass(102), 102.0 / 1024.0, 1e-12);
}

TEST(Zipf, EmpiricalDrawFrequenciesMatchTheCdf)
{
    const ZipfSampler z(1024, 0.99);
    Rng rng(123);
    const std::uint64_t draws = 50000;
    std::uint64_t head = 0;
    for (std::uint64_t i = 0; i < draws; ++i)
        if (z.sample(rng) < 16)
            ++head;
    const double want = z.headMass(16);
    EXPECT_NEAR(static_cast<double>(head) / draws, want, 0.02);
}

// ---------------------------------------------------------------------
// Open-loop burst wrapper.
// ---------------------------------------------------------------------

TEST(Burst, DutyCyclesArrivalsAndStripsThinkTime)
{
    KvWalParams kp;
    kp.keys = 128;
    kp.thinkInstrs = 100;
    BurstParams bp;
    bp.onOps = 200;
    bp.duty = 0.25;
    bp.idleBundle = 32;

    BurstyArrivalGenerator gen(
        std::make_unique<KvWalGenerator>(kp, 20000, 9), bp);
    const auto ops = drain(gen);

    // With think time stripped, the only Instr ops are the idle-gap
    // bundles, each at most idleBundle instructions.
    std::uint64_t idle_instrs = 0, mem_ops = 0;
    for (const TraceOp &op : ops) {
        if (op.kind == TraceOp::Kind::Instr) {
            EXPECT_LE(op.count, bp.idleBundle);
            idle_instrs += op.count;
        } else {
            ++mem_ops;
        }
    }
    EXPECT_GT(idle_instrs, 0u);
    EXPECT_GT(mem_ops, 0u);

    // Open loop: idle = on * (1 - duty) / duty, so at 25% duty the idle
    // instruction mass is about 3x the burst mass.
    const double ratio = static_cast<double>(idle_instrs) /
                         static_cast<double>(mem_ops);
    EXPECT_GT(ratio, 1.5);

    // And the wrapped stream is as deterministic as the inner one.
    BurstyArrivalGenerator again(
        std::make_unique<KvWalGenerator>(kp, 20000, 9), bp);
    EXPECT_TRUE(sameOps(ops, drain(again)));
}

// ---------------------------------------------------------------------
// Registry-selected workloads through the experiment engine.
// ---------------------------------------------------------------------

TEST(WorkloadSweep, RegistryPointsAreByteIdenticalAcrossJobs)
{
    setQuietLogging(true);
    auto run = [](unsigned jobs) {
        const char *workloads[] = {
            "kv_wal:keys=256",
            "zipf_mix:tenants=64,keys=8",
            "fs_journal:meta_blocks=128",
            "kv_wal:keys=128,burst_period=300,burst_duty=0.5",
        };
        const Scheme schemes[] = {Scheme::Bbb, Scheme::Cobcm};
        SweepReport report;
        report.bench = "workload_determinism_test";
        report.jobs = 0;
        for (const char *w : workloads) {
            for (Scheme s : schemes) {
                ExperimentPoint p;
                p.label = std::string(w) + "/" + schemeName(s);
                p.scheme = s;
                p.workload = w;
                p.instructions = 3000;
                p.seed = 42;
                report.points.push_back(std::move(p));
            }
        }
        SweepOptions opts;
        opts.jobs = jobs;
        opts.progress = false;
        report.results = SweepRunner(opts).run(report.points);
        return sweepJsonDeterministic(report);
    };

    const std::string serial = run(1);
    const std::string parallel = run(4);
    EXPECT_EQ(serial, parallel);
    EXPECT_NE(serial.find("\"workload\": \"kv_wal:keys=256\""),
              std::string::npos);
}

TEST(WorkloadSystem, BarriersReachTheCpuAsPersistFences)
{
    setQuietLogging(true);
    SystemConfig cfg =
        SecPbSystem::configFor(Scheme::Cobcm, serverWorkloadProfile());
    SecPbSystem sys(cfg);
    auto gen = makeWorkload("kv_wal:keys=256,ckpt_every=64", 10000, 11);
    const SimulationResult res = sys.run(*gen);

    // Every generator barrier retires as a persist barrier; the KV/WAL
    // commit discipline also produces actual persists.
    ASSERT_NE(gen->counters(), nullptr);
    EXPECT_GT(gen->counters()->barriers, 0u);
    EXPECT_EQ(static_cast<std::uint64_t>(sys.cpu().statBarriers.value()),
              gen->counters()->barriers);
    EXPECT_GT(res.persists, 0u);
}

// ---------------------------------------------------------------------
// Crash-consistency slice: fault injection over the KV/WAL workload.
// ---------------------------------------------------------------------

TEST(WorkloadFault, KvWalCrashDrainsAndRecoversConsistently)
{
    setQuietLogging(true);
    SystemConfig cfg =
        SecPbSystem::configFor(Scheme::Cobcm, serverWorkloadProfile());
    SecPbSystem sys(cfg);

    FaultPlan plan;
    plan.crashAtPersist = 200;
    plan.tamperCount = 2;
    plan.tamperSeed = 3;

    auto gen = makeWorkload("kv_wal:keys=256,ckpt_every=64", 40000, 13);
    const FaultReport report = FaultInjector(sys, plan).run(*gen);

    EXPECT_TRUE(report.crashedMidRun);
    EXPECT_GE(report.persistsAtCrash, 200u);
    EXPECT_TRUE(report.crash.recovered);
    EXPECT_EQ(report.tampers.size(), 2u);
    EXPECT_TRUE(report.tampersAllDetected);
    EXPECT_TRUE(report.ok());
}
