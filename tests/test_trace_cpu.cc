/**
 * @file
 * Unit tests for the trace-driven core model: retire-width timing, load
 * penalties, store-buffer stalls, and completion callbacks.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

SystemConfig
cpuConfig()
{
    SystemConfig cfg;
    cfg.scheme = Scheme::Bbb;
    cfg.pmDataBytes = 1ULL << 30;
    cfg.cpu.retireWidth = 4;
    cfg.cpu.loadPenalties = LoadPenalties{0.0, 8.0, 20.0, 100.0};
    return cfg;
}

} // namespace

TEST(TraceCpu, PlainInstructionsRetireAtWidth)
{
    SecPbSystem sys(cpuConfig());
    ScriptedGenerator gen;
    gen.instr(400);
    SimulationResult r = sys.run(gen);
    EXPECT_EQ(r.instructions, 400u);
    // 400 instructions at width 4 = 100 cycles (+- quantum rounding).
    EXPECT_NEAR(static_cast<double>(r.execTicks), 100.0, 8.0);
}

TEST(TraceCpu, LoadPenaltiesAccumulate)
{
    SecPbSystem sys(cpuConfig());
    ScriptedGenerator gen;
    for (int i = 0; i < 100; ++i)
        gen.load(MemLevel::Mem);  // 100-cycle penalty each
    SimulationResult r = sys.run(gen);
    EXPECT_GE(r.execTicks, 100u * 100u);
}

TEST(TraceCpu, L1LoadsAreFree)
{
    SecPbSystem sys(cpuConfig());
    ScriptedGenerator gen;
    for (int i = 0; i < 400; ++i)
        gen.load(MemLevel::L1);
    SimulationResult r = sys.run(gen);
    EXPECT_NEAR(static_cast<double>(r.execTicks), 100.0, 8.0);
}

TEST(TraceCpu, CountsOpKinds)
{
    SecPbSystem sys(cpuConfig());
    ScriptedGenerator gen;
    gen.instr(10).load().store(0x100, 1).load().store(0x140, 2);
    SimulationResult r = sys.run(gen);
    EXPECT_EQ(r.instructions, 14u);
    EXPECT_DOUBLE_EQ(sys.cpu().statLoads.value(), 2.0);
    EXPECT_DOUBLE_EQ(sys.cpu().statStores.value(), 2.0);
}

TEST(TraceCpu, StallsWhenStoreBufferSaturates)
{
    SystemConfig cfg = cpuConfig();
    cfg.scheme = Scheme::NoGap;  // slow acceptance
    cfg.storeBufferEntries = 2;
    SecPbSystem sys(cfg);
    ScriptedGenerator gen;
    for (Addr a = 0; a < 30 * BlockSize; a += BlockSize)
        gen.store(a, a);
    SimulationResult r = sys.run(gen);
    EXPECT_GT(r.sbFullStalls, 0u);
    EXPECT_EQ(r.persists, 30u);  // all stores still persist eventually
}

TEST(TraceCpu, SlowSchemeSlowsExecution)
{
    auto run_with = [](Scheme s) {
        SystemConfig cfg = cpuConfig();
        cfg.scheme = s;
        cfg.storeBufferEntries = 4;
        SecPbSystem sys(cfg);
        ScriptedGenerator gen;
        for (Addr a = 0; a < 50 * BlockSize; a += BlockSize)
            gen.store(a, a);
        return sys.run(gen).execTicks;
    };
    EXPECT_GT(run_with(Scheme::NoGap), run_with(Scheme::Bbb));
}

TEST(TraceCpu, DoneFiresOnceGeneratorExhausted)
{
    SecPbSystem sys(cpuConfig());
    ScriptedGenerator gen;
    gen.instr(100);
    sys.start(gen);
    EXPECT_FALSE(sys.finished());
    sys.runUntil(1'000'000);
    EXPECT_TRUE(sys.finished());
}

TEST(TraceCpu, IpcReflectsRetireWidthCeiling)
{
    SecPbSystem sys(cpuConfig());
    ScriptedGenerator gen;
    gen.instr(10'000);
    SimulationResult r = sys.run(gen);
    EXPECT_LE(r.ipc, 4.05);
    EXPECT_GT(r.ipc, 3.5);
}
