/**
 * @file
 * Regression guards for the design-choice mechanisms the ablation bench
 * isolates: drain concurrency, BMT-update merging, watermark validity,
 * and SecPB-size effects. Parameterized sweeps double as property tests
 * that recovery holds at every buffer size.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>

#include "core/system.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

std::uint64_t
gamessTicks(const SystemConfig &cfg, std::uint64_t instr = 40'000)
{
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profileByName("gamess"), instr, 7);
    return sys.run(gen).execTicks;
}

} // namespace

TEST(Ablation, WiderDrainHelpsLazySchemes)
{
    SystemConfig narrow =
        SecPbSystem::configFor(Scheme::Cobcm, profileByName("gamess"));
    narrow.secpb.drainWidth = 1;
    SystemConfig wide = narrow;
    wide.secpb.drainWidth = 8;
    EXPECT_GT(gamessTicks(narrow), gamessTicks(wide) * 3 / 2);
}

TEST(Ablation, MergingKeepsCobcmOffTheWalkerBottleneck)
{
    SystemConfig merged =
        SecPbSystem::configFor(Scheme::Cobcm, profileByName("gamess"));
    SystemConfig unmerged = merged;
    unmerged.walker.enableMerging = false;
    EXPECT_GT(gamessTicks(unmerged), gamessTicks(merged) * 11 / 10);
}

TEST(Ablation, MergingDoesNotChangeRecoveredPlaintext)
{
    // Merging is a timing optimization: with the same trace run to
    // completion, the recovered plaintext state must be identical with
    // merging on or off (counters/roots may differ -- residency patterns
    // shift -- but the observer-visible data cannot).
    auto recovered = [](bool merge) {
        SystemConfig cfg =
            SecPbSystem::configFor(Scheme::Cobcm, profileByName("gamess"));
        cfg.walker.enableMerging = merge;
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(profileByName("gamess"), 20'000, 7);
        sys.run(gen);
        CrashReport cr = sys.crashNow();
        EXPECT_TRUE(cr.recovered);
        std::map<Addr, BlockData> state;
        for (Addr a : sys.oracle().touchedBlocks())
            state[a] = sys.oracle().blockContent(a);
        return state;
    };
    EXPECT_EQ(recovered(true), recovered(false));
}

TEST(Ablation, InvalidWatermarksAreFatal)
{
    SystemConfig cfg;
    cfg.secpb.highWatermark = 0.5;
    cfg.secpb.lowWatermark = 0.5;
    EXPECT_DEATH(SecPbSystem sys(cfg), "watermark");
}

TEST(Ablation, SpSerializationScalesWithTreeHeight)
{
    // The SP baseline's per-persist cost grows with the walked height --
    // this is what separates sp_dbmf from sp_sbmf in Fig. 9.
    auto sp_ticks = [](BmfMode bmf) {
        SystemConfig cfg =
            SecPbSystem::configFor(Scheme::Sp, profileByName("gcc"));
        cfg.walker.bmfMode = bmf;
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(profileByName("gcc"), 40'000, 7);
        return sys.run(gen).execTicks;
    };
    const auto dbmf = sp_ticks(BmfMode::Dbmf);
    const auto sbmf = sp_ticks(BmfMode::Sbmf);
    const auto full = sp_ticks(BmfMode::None);
    EXPECT_LT(dbmf, sbmf);
    EXPECT_LT(sbmf, full);
}

class SecPbSizes : public ::testing::TestWithParam<unsigned>
{};

/** The configured size sweep; comparison pairs are drawn from it. */
constexpr unsigned kSizeSweep[] = {8u, 16u, 32u, 64u, 128u, 512u};

INSTANTIATE_TEST_SUITE_P(Sweep, SecPbSizes,
                         ::testing::ValuesIn(kSizeSweep),
                         [](const auto &info) {
                             return "entries" +
                                    std::to_string(info.param);
                         });

TEST_P(SecPbSizes, RecoveryHoldsAtEverySize)
{
    SystemConfig cfg =
        SecPbSystem::configFor(Scheme::Cobcm, profileByName("gobmk"));
    cfg.secpb.numEntries = GetParam();
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profileByName("gobmk"), 20'000, 5);
    sys.start(gen);
    sys.runUntil(6'000);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
    EXPECT_LE(cr.work.entriesDrained, GetParam());
}

TEST_P(SecPbSizes, WatermarksScaleWithCapacity)
{
    SystemConfig cfg;
    cfg.secpb.numEntries = GetParam();
    SecPbSystem sys(cfg);
    EXPECT_EQ(sys.secpb().highWatermarkEntries(),
              std::max(1u, GetParam() * 3 / 4));
    EXPECT_EQ(sys.secpb().lowWatermarkEntries(), GetParam() / 2);
}

TEST_P(SecPbSizes, BiggerBufferNeverDrainsMoreOften)
{
    // Larger SecPBs coalesce more: the number of drained entries per
    // store is non-increasing in capacity, sampled at a pair of sweep
    // sizes around the parameter for local monotonicity. The largest
    // sweep point has no larger neighbour, so it compares downward
    // against the previous sweep size instead of skipping.
    const auto *pos =
        std::find(std::begin(kSizeSweep), std::end(kSizeSweep), GetParam());
    ASSERT_NE(pos, std::end(kSizeSweep));
    const bool at_top = pos + 1 == std::end(kSizeSweep);
    const unsigned smaller = at_top ? *(pos - 1) : *pos;
    const unsigned bigger = at_top ? *pos : *(pos + 1);
    auto drains = [](unsigned entries) {
        SystemConfig cfg =
            SecPbSystem::configFor(Scheme::Cobcm, profileByName("gcc"));
        cfg.secpb.numEntries = entries;
        SecPbSystem sys(cfg);
        SyntheticGenerator gen(profileByName("gcc"), 40'000, 5);
        SimulationResult r = sys.run(gen);
        return static_cast<double>(r.drainedEntries) / r.persists;
    };
    EXPECT_LE(drains(bigger), drains(smaller) * 1.05);
}
