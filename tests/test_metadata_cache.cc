/**
 * @file
 * Unit tests for the timed metadata caches.
 */

#include <gtest/gtest.h>

#include "metadata/metadata_cache.hh"

using namespace secpb;

namespace
{

struct Fixture
{
    EventQueue eq;
    StatGroup g{"g"};
    PcmConfig pcmCfg{100, 300, 2, 64, 128};
    PcmModel pcm{eq, pcmCfg, g};
    MetadataCache cache{"mdc", CacheGeometry{512, 2, 64}, 2, pcm, g};
};

} // namespace

TEST(MetadataCache, MissFetchesFromPcm)
{
    Fixture f;
    const Cycles lat = f.cache.readAccess(0x1000);
    EXPECT_EQ(lat, 2u + 100u);
    EXPECT_EQ(f.pcm.numReads(), 1u);
    EXPECT_DOUBLE_EQ(f.cache.statMisses.value(), 1.0);
}

TEST(MetadataCache, HitIsCheap)
{
    Fixture f;
    f.cache.readAccess(0x1000);
    EXPECT_EQ(f.cache.readAccess(0x1000), 2u);
    EXPECT_DOUBLE_EQ(f.cache.statHits.value(), 1.0);
}

TEST(MetadataCache, WriteMarksDirtyAndEvictionWritesBack)
{
    Fixture f;
    // Set 0 holds 2 ways: 0x000, 0x400, then 0x800 evicts.
    f.cache.writeAccess(0x000);
    f.cache.readAccess(0x400);
    f.cache.readAccess(0x800);  // evicts dirty 0x000
    EXPECT_DOUBLE_EQ(f.cache.statWritebacks.value(), 1.0);
    EXPECT_EQ(f.pcm.numWrites(), 1u);
}

TEST(MetadataCache, CleanEvictionIsSilent)
{
    Fixture f;
    f.cache.readAccess(0x000);
    f.cache.readAccess(0x400);
    f.cache.readAccess(0x800);
    EXPECT_DOUBLE_EQ(f.cache.statWritebacks.value(), 0.0);
}

TEST(MetadataCache, NoWritebackModeDiscardsDirty)
{
    // BMT-node caches are recomputable: dirty evictions are dropped.
    EventQueue eq;
    StatGroup g("g");
    PcmModel pcm(eq, PcmConfig{100, 300, 2, 64, 128}, g);
    MetadataCache cache("bmt", CacheGeometry{512, 2, 64}, 2, pcm, g,
                        /*writeback_dirty=*/false);
    cache.writeAccess(0x000);
    cache.readAccess(0x400);
    cache.readAccess(0x800);
    EXPECT_DOUBLE_EQ(cache.statWritebacks.value(), 0.0);
    EXPECT_EQ(pcm.numWrites(), 0u);
}

TEST(MetadataCache, DirtyBlocksEnumerated)
{
    Fixture f;
    f.cache.writeAccess(0x000);
    f.cache.writeAccess(0x040);
    f.cache.readAccess(0x080);
    EXPECT_EQ(f.cache.dirtyBlocks().size(), 2u);
    f.cache.flushAll();
    EXPECT_TRUE(f.cache.dirtyBlocks().empty());
}

TEST(MetadataCache, HitRateTracksAccesses)
{
    Fixture f;
    f.cache.readAccess(0x000);  // miss
    f.cache.readAccess(0x000);  // hit
    f.cache.readAccess(0x000);  // hit
    EXPECT_NEAR(f.cache.hitRate(), 2.0 / 3.0, 1e-9);
}
