/**
 * @file
 * Unit tests for the deterministic PRNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

using namespace secpb;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIsInUnitInterval)
{
    Rng r(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; loose 3-sigma band.
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng r(13);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (r.chance(0.25))
            ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, GeometricHasCorrectMean)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(0.5));
    EXPECT_NEAR(sum / n, 2.0, 0.1);  // mean of Geom(0.5) is 2
}
