/**
 * @file
 * Multi-core SecPB tests (paper Section IV-C(c)): entry migration on
 * remote writes, flush on remote reads, metadata travelling with
 * migrated entries, and crash recovery with per-core buffers.
 */

#include <gtest/gtest.h>

#include "core/multicore.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

MultiCoreConfig
mcCfg(unsigned cores, Scheme scheme = Scheme::Cobcm)
{
    MultiCoreConfig cfg;
    cfg.numCores = cores;
    cfg.base.scheme = scheme;
    cfg.base.secpb.numEntries = 8;
    cfg.base.pmDataBytes = 1ULL << 30;
    return cfg;
}

} // namespace

TEST(MultiCore, PrivateWorkingSetsRunToCompletion)
{
    MultiCoreSystem sys(mcCfg(4));
    std::vector<std::unique_ptr<ScriptedGenerator>> gens;
    std::vector<WorkloadGenerator *> raw;
    for (unsigned c = 0; c < 4; ++c) {
        auto g = std::make_unique<ScriptedGenerator>();
        for (int i = 0; i < 10; ++i)
            g->store(0x100000ULL * c + i * BlockSize, 0xC0 + i);
        raw.push_back(g.get());
        gens.push_back(std::move(g));
    }
    MultiCoreResult r = sys.run(raw);
    ASSERT_EQ(r.perCore.size(), 4u);
    for (const auto &pc : r.perCore)
        EXPECT_EQ(pc.persists, 10u);
    EXPECT_EQ(r.migrations, 0u);  // disjoint sets never migrate
    EXPECT_EQ(sys.totalPersists(), 40u);
    EXPECT_TRUE(sys.invariantNoReplication());
}

TEST(MultiCore, SharedBlockMigratesBetweenCores)
{
    MultiCoreSystem sys(mcCfg(2));
    ScriptedGenerator g0, g1;
    g0.store(0x1000, 0xAAAA).instr(200);
    g1.instr(200).store(0x1000, 0xBBBB);
    std::vector<WorkloadGenerator *> gens{&g0, &g1};
    MultiCoreResult r = sys.run(gens);
    EXPECT_GE(r.migrations, 1u);
    // Last writer wins; the resident slice's oracle holds the block.
    EXPECT_EQ(blockWord(
                  sys.residentSystem(0x1000).oracle().blockContent(0x1000),
                  0),
              0xBBBBu);
    EXPECT_EQ(sys.totalPersists(), 2u);
    // No replication: at most one SecPB holds the block.
    const unsigned holders =
        (sys.secpb(0).occupancy() ? 1 : 0) +
        (sys.secpb(1).occupancy() ? 1 : 0);
    EXPECT_LE(holders, 1u);
}

TEST(MultiCore, MigrationCarriesValueIndependentMetadata)
{
    // Paper: "the requesting core would not require a counter, OTP, or
    // BMT root update" -- the counter bumps once per residency even when
    // the residency spans two cores.
    MultiCoreSystem sys(mcCfg(2, Scheme::NoGap));
    ScriptedGenerator g0, g1;
    g0.store(0x2000, 0x1);
    g1.instr(2000).store(0x2000, 0x2);
    std::vector<WorkloadGenerator *> gens{&g0, &g1};
    MultiCoreResult r = sys.run(gens);
    EXPECT_GE(r.migrations, 1u);
    // One residency, one increment -- across both cores. The page's
    // durable state (counter block included) lives in the slice it
    // migrated to; a crash must verify and leave the minor at 1.
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
    SecPbSystem &home = sys.residentSystem(0x2000);
    EXPECT_GT(home.tree().numLevels(), 0u);
    EXPECT_EQ(home.pm()
                  .readCounterBlock(home.layout().pageIndex(0x2000))
                  .counterFor(home.layout().blockInPage(0x2000))
                  .minor,
              1u);
}

TEST(MultiCore, RemoteReadFlushesOwnerEntry)
{
    MultiCoreSystem sys(mcCfg(2));
    ScriptedGenerator g0, g1;
    g0.store(0x3000, 0x77);
    g1.instr(100);
    std::vector<WorkloadGenerator *> gens{&g0, &g1};
    sys.run(gens);
    ASSERT_EQ(sys.directory().owner(0x3000), 0u);

    EXPECT_TRUE(sys.coreRead(1, 0x3000));
    sys.runUntil(sys.now() + 1'000'000);
    EXPECT_EQ(sys.directory().owner(0x3000), NoOwner);
    // Residence stays with the flushing slice: its PM has the data.
    EXPECT_TRUE(sys.residentSystem(0x3000).pm().hasData(0x3000));
    EXPECT_EQ(sys.secpb(0).occupancy(), 0u);
}

TEST(MultiCore, LocalReadDoesNotFlush)
{
    MultiCoreSystem sys(mcCfg(2));
    ScriptedGenerator g0, g1;
    g0.store(0x3000, 0x77);
    g1.instr(10);
    std::vector<WorkloadGenerator *> gens{&g0, &g1};
    sys.run(gens);
    EXPECT_FALSE(sys.coreRead(0, 0x3000));
    EXPECT_EQ(sys.directory().owner(0x3000), 0u);
}

TEST(MultiCore, PingPongSharingStillRecovers)
{
    // Heavy migration traffic: two cores alternately writing the same
    // small block set. The persist oracle and PM must agree afterwards.
    // Coherence is page-granular and grants batch at epoch barriers, so
    // the four shared blocks (one page) ping-pong as a unit: expect the
    // page to move both directions, not once per block.
    MultiCoreSystem sys(mcCfg(2, Scheme::Cobcm));
    ScriptedGenerator g0, g1;
    for (int i = 0; i < 30; ++i) {
        g0.store((i % 4) * BlockSize, 0xA000 + i).instr(60);
        g1.instr(30).store((i % 4) * BlockSize, 0xB000 + i).instr(30);
    }
    std::vector<WorkloadGenerator *> gens{&g0, &g1};
    MultiCoreResult r = sys.run(gens);
    EXPECT_GE(r.migrations, 2u);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
    EXPECT_TRUE(sys.invariantNoReplication());
}

TEST(MultiCore, RandomSharingPropertyCrash)
{
    // Four cores, overlapping random writes, crash mid-flight: recovery
    // must match the shared oracle for every secure scheme class.
    for (Scheme s : {Scheme::Cobcm, Scheme::Cm, Scheme::NoGap}) {
        MultiCoreSystem sys(mcCfg(4, s));
        Rng rng(314);
        std::vector<std::unique_ptr<ScriptedGenerator>> gens;
        std::vector<WorkloadGenerator *> raw;
        for (unsigned c = 0; c < 4; ++c) {
            auto g = std::make_unique<ScriptedGenerator>();
            for (int i = 0; i < 40; ++i) {
                g->store(blockAlign(rng.below(24 * BlockSize)) +
                             8 * rng.below(8),
                         rng.next());
                g->instr(static_cast<std::uint32_t>(1 + rng.below(30)));
            }
            raw.push_back(g.get());
            gens.push_back(std::move(g));
        }
        sys.start(raw);
        sys.runUntil(1'500);
        CrashReport cr = sys.crashNow();
        EXPECT_TRUE(cr.recovered) << schemeName(s);
        EXPECT_TRUE(sys.directory().invariantSingleOwner());
        EXPECT_TRUE(sys.invariantNoReplication()) << schemeName(s);
    }
}

TEST(MultiCore, FourCoresAggregateThroughput)
{
    // Scaling smoke test: four cores retire four workloads' instructions.
    MultiCoreConfig cfg = mcCfg(4);
    cfg.base.secpb.numEntries = 32;
    MultiCoreSystem sys(cfg);
    std::vector<std::unique_ptr<SyntheticGenerator>> gens;
    std::vector<WorkloadGenerator *> raw;
    for (unsigned c = 0; c < 4; ++c) {
        gens.push_back(std::make_unique<SyntheticGenerator>(
            profileByName("gcc"), 10'000, 100 + c,
            /*region_base=*/0x4000000ULL * c));
        raw.push_back(gens.back().get());
    }
    MultiCoreResult r = sys.run(raw);
    EXPECT_EQ(r.totalInstructions, 40'000u);
    EXPECT_EQ(r.migrations, 0u);
    // Shared-MC contention can stretch but not shrink any one core's run.
    for (const auto &pc : r.perCore)
        EXPECT_GT(pc.ipc, 0.1);
}

TEST(MultiCore, CrashEnergyProvisionsPerCore)
{
    MultiCoreSystem sys(mcCfg(4));
    ScriptedGenerator g0, g1, g2, g3;
    g0.store(0x000, 1);
    g1.store(0x100000, 2);
    g2.store(0x200000, 3);
    g3.store(0x300000, 4);
    std::vector<WorkloadGenerator *> gens{&g0, &g1, &g2, &g3};
    sys.run(gens);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
    EXPECT_EQ(cr.work.entriesDrained, 4u);
    // Provisioning covers four SecPBs.
    EnergyModel em(EnergyCosts{}, sys.slice(0).tree().numLevels() + 1);
    EXPECT_NEAR(cr.provisionedEnergyJ,
                4 * em.secPbBatteryEnergy(Scheme::Cobcm, 8), 1e-9);
}
