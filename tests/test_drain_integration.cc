/**
 * @file
 * Integration tests of the drain engine against the WPQ and PCM: retry
 * on WPQ-full, write coalescing, metadata-cache writebacks, and drain
 * ordering.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

SystemConfig
tinyWpqCfg(Scheme scheme = Scheme::Cobcm)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.secpb.numEntries = 8;
    cfg.wpqEntries = 2;  // tiny ADR domain: drains must retry
    cfg.pmDataBytes = 1ULL << 30;
    // Slow PCM writes keep the WPQ congested.
    cfg.pcm.writeLatency = 2000;
    cfg.pcm.numBanks = 1;
    return cfg;
}

} // namespace

TEST(DrainIntegration, TinyWpqStillDrainsEverything)
{
    SecPbSystem sys(tinyWpqCfg());
    ScriptedGenerator gen;
    for (Addr a = 0; a < 24 * BlockSize; a += BlockSize)
        gen.store(a, a + 5);
    SimulationResult r = sys.run(gen);
    EXPECT_EQ(r.persists, 24u);
    // Force the residue out and verify the WPQ-full retry path persisted
    // every drained block.
    sys.secpb().drainAll(nullptr);
    sys.runUntil(sys.eventQueue().curTick() + 10'000'000);
    EXPECT_TRUE(sys.secpb().empty());
    for (Addr a = 0; a < 24 * BlockSize; a += BlockSize)
        EXPECT_TRUE(sys.pm().hasData(a)) << a;
    EXPECT_GT(sys.wpq().statFullRejects.value(), 0.0);
}

TEST(DrainIntegration, WpqBackpressureSlowsExecution)
{
    auto ticks = [](unsigned wpq_entries) {
        SystemConfig cfg = tinyWpqCfg();
        cfg.wpqEntries = wpq_entries;
        SecPbSystem sys(cfg);
        ScriptedGenerator gen;
        for (Addr a = 0; a < 64 * BlockSize; a += BlockSize)
            gen.store(a, a);
        return sys.run(gen).execTicks;
    };
    EXPECT_GT(ticks(1), ticks(32));
}

TEST(DrainIntegration, DrainsGoOldestFirst)
{
    // FIFO draining: the first-allocated blocks reach PM first.
    SystemConfig cfg;
    cfg.scheme = Scheme::Cobcm;
    cfg.secpb.numEntries = 8;
    cfg.pmDataBytes = 1ULL << 30;
    SecPbSystem sys(cfg);
    ScriptedGenerator gen;
    for (Addr a = 0; a < 6 * BlockSize; a += BlockSize)
        gen.store(a, a);  // reaches the high watermark (6 of 8)
    sys.run(gen);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    // Drained down to the low watermark (4): the two oldest went out.
    EXPECT_TRUE(sys.pm().hasData(0 * BlockSize));
    EXPECT_TRUE(sys.pm().hasData(1 * BlockSize));
    EXPECT_FALSE(sys.pm().hasData(5 * BlockSize));
}

TEST(DrainIntegration, MetadataCacheWritebacksReachPcm)
{
    // Enough distinct pages to overflow the counter cache: dirty counter
    // blocks must be written back to PCM on eviction.
    SystemConfig cfg;
    cfg.scheme = Scheme::Cobcm;
    cfg.secpb.numEntries = 8;
    cfg.ctrCacheGeom = CacheGeometry{1024, 2, 64};  // 16 blocks only
    cfg.pmDataBytes = 1ULL << 30;
    SecPbSystem sys(cfg);
    ScriptedGenerator gen;
    for (Addr page = 0; page < 64; ++page)
        gen.store(page * PageSize, page);
    sys.run(gen);
    sys.secpb().drainAll(nullptr);
    sys.runUntil(sys.eventQueue().curTick() + 10'000'000);
    EXPECT_GT(sys.ctrCache().statWritebacks.value(), 0.0);
}

TEST(DrainIntegration, WpqCoalescesCounterBlockWrites)
{
    // SP pushes one data block per tuple; blocks within a page share a
    // counter block, and in the old 3-push design those writes coalesced.
    // With MDC-resident metadata the WPQ only sees data blocks -- verify
    // they do NOT coalesce (distinct addresses) but repeated tuples to
    // the same block do.
    SystemConfig cfg;
    cfg.scheme = Scheme::Sp;
    cfg.pmDataBytes = 1ULL << 30;
    SecPbSystem sys(cfg);
    ScriptedGenerator gen;
    gen.store(0x000, 1).store(0x000, 2).store(0x040, 3);
    sys.run(gen);
    sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
    RecoveryVerifier verifier(sys.layout(), sys.config().keys);
    EXPECT_TRUE(
        verifier.verifyAll(sys.pm(), sys.tree(), sys.oracle()).ok());
}

TEST(DrainIntegration, DrainAllOnEmptyBufferFiresImmediately)
{
    SecPbSystem sys;
    bool fired = false;
    sys.secpb().drainAll([&] { fired = true; });
    EXPECT_TRUE(fired);
}

TEST(DrainIntegration, CrashDuringCongestedDrainRecovers)
{
    SecPbSystem sys(tinyWpqCfg(Scheme::Cm));
    ScriptedGenerator gen;
    for (Addr a = 0; a < 32 * BlockSize; a += BlockSize)
        gen.store(a, a + 1);
    sys.start(gen);
    sys.runUntil(3'000);  // mid-drain, WPQ congested
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
}
