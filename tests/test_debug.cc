/**
 * @file
 * Tests for the debug-tracing facility and the SecPB trace points.
 */

#include <gtest/gtest.h>

#include "core/system.hh"
#include "sim/debug.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

/** RAII: capture trace lines, restore state on exit. */
struct TraceCapture
{
    std::vector<std::string> lines;

    TraceCapture()
    {
        debug::setSink([this](const std::string &l) {
            lines.push_back(l);
        });
    }

    ~TraceCapture()
    {
        debug::setSink(nullptr);
        debug::clearAll();
    }

    bool
    contains(const std::string &needle) const
    {
        for (const auto &l : lines)
            if (l.find(needle) != std::string::npos)
                return true;
        return false;
    }
};

} // namespace

TEST(Debug, FlagsToggle)
{
    debug::clearAll();
    EXPECT_FALSE(debug::enabled("Foo"));
    debug::enable("Foo");
    EXPECT_TRUE(debug::enabled("Foo"));
    debug::disable("Foo");
    EXPECT_FALSE(debug::enabled("Foo"));
    debug::clearAll();
}

TEST(Debug, AllFlagEnablesEverything)
{
    debug::clearAll();
    debug::enable("All");
    EXPECT_TRUE(debug::enabled("Whatever"));
    debug::clearAll();
}

TEST(Debug, EmitGoesToSink)
{
    TraceCapture cap;
    debug::emit("X", "hello");
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0], "X: hello");
}

TEST(Debug, DprintfIsGated)
{
    TraceCapture cap;
    DPRINTF("Gated", "should not appear");
    EXPECT_TRUE(cap.lines.empty());
    debug::enable("Gated");
    DPRINTF("Gated", "n=%d", 7);
    ASSERT_EQ(cap.lines.size(), 1u);
    EXPECT_EQ(cap.lines[0], "Gated: n=7");
}

TEST(Debug, SecPbTracePointsFire)
{
    TraceCapture cap;
    debug::enable("SecPb");

    SystemConfig cfg;
    cfg.secpb.numEntries = 8;
    cfg.pmDataBytes = 1ULL << 30;
    SecPbSystem sys(cfg);  // constructed AFTER enabling: flag is cached
    ScriptedGenerator gen;
    for (Addr a = 0; a < 8 * BlockSize; a += BlockSize)
        gen.store(a, a).store(a, a + 1);
    sys.run(gen);
    sys.crashNow();

    EXPECT_TRUE(cap.contains("alloc"));
    EXPECT_TRUE(cap.contains("coalesce"));
    EXPECT_TRUE(cap.contains("drain"));
    EXPECT_TRUE(cap.contains("crash drain"));
}

TEST(Debug, SilentByDefault)
{
    TraceCapture cap;
    SystemConfig cfg;
    cfg.pmDataBytes = 1ULL << 30;
    SecPbSystem sys(cfg);
    ScriptedGenerator gen;
    gen.store(0x0, 1);
    sys.run(gen);
    EXPECT_TRUE(cap.lines.empty());
}
