/**
 * @file
 * Regression pins for the flat-layout migration: the unordered_map ->
 * FlatMap moves (SecPB index, walker in-flight set, counter store, PM
 * image), the dense SoA Merkle tree, and the batched drain crypto. Each
 * test targets a hazard the migration introduced -- value pointers that
 * die on mutation, iteration-order changes, the hashWords shortcut --
 * and the final test pins a full fixed-seed fig6 smoke point to golden
 * values so any behavioural drift in the refactor fails loudly.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/system.hh"
#include "crypto/hash.hh"
#include "metadata/bmt.hh"
#include "workload/scripted.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

SystemConfig
smallConfig(Scheme scheme, unsigned entries = 8)
{
    SystemConfig cfg;
    cfg.scheme = scheme;
    cfg.secpb.numEntries = entries;
    cfg.pmDataBytes = 1ULL << 30;
    return cfg;
}

} // namespace

TEST(FlatMigration, BmtNodeDigestMatchesPackedHash)
{
    // The dense tree hashes nodes with hashWords over the child array
    // instead of materializing the 64-byte wire form. Both sides memcpy
    // the same native words, so the digests must be bit-identical --
    // this equivalence is what keeps every stored digest, and hence the
    // root register, unchanged across the SoA migration.
    std::uint64_t x = 0x5eed;
    for (int trial = 0; trial < 64; ++trial) {
        BmtNode n;
        for (auto &c : n.child) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            c = x;
        }
        const std::uint64_t seed = x ^ 0xb0a5a1b0a5a1ULL;
        EXPECT_EQ(n.digest(seed), hashBlock(n.pack(), seed));
    }
    // Degenerate contents too: all-zero and all-ones nodes.
    BmtNode zero;
    EXPECT_EQ(zero.digest(1), hashBlock(zero.pack(), 1));
    BmtNode ones;
    ones.child.fill(~0ULL);
    EXPECT_EQ(ones.digest(1), hashBlock(ones.pack(), 1));
}

TEST(FlatMigration, WalkerInFlightSetDrainsToZero)
{
    // The walker's completion events erase from the in-flight FlatMap by
    // key (a stored pointer would dangle across later growth or
    // back-shift). A full run with heavy merging must leave the set
    // empty once the queue runs dry -- a leaked entry would wrongly
    // merge a future walk into a long-retired one.
    SystemConfig cfg =
        SecPbSystem::configFor(Scheme::Cobcm, profileByName("gamess"));
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profileByName("gamess"), 20'000, 7);
    sys.run(gen);
    // run() returns at SB-empty with walk completions still scheduled;
    // drain the queue so every completion event has fired.
    sys.eventQueue().run();
    EXPECT_GT(sys.walker().statMergedUpdates.value(), 0.0);
    EXPECT_EQ(sys.walker().inFlightWalks(), 0u);
}

TEST(FlatMigration, IndexChurnSurvivesCrashRecovery)
{
    // 40k instructions of gcc churn the SecPB index through thousands of
    // insert/erase cycles (every allocation and release mutates the
    // table, back-shifting probe clusters). Any stale-pointer or lost-
    // entry bug corrupts the drain bookkeeping; a crash drain plus full
    // recovery verification catches it.
    SystemConfig cfg =
        SecPbSystem::configFor(Scheme::Cobcm, profileByName("gcc"));
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profileByName("gcc"), 40'000, 7);
    sys.run(gen);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
    EXPECT_TRUE(cr.recovery.ok());
    EXPECT_EQ(cr.recovery.plaintextMismatches, 0u);
    EXPECT_GT(cr.recovery.blocksChecked, 0u);
}

TEST(FlatMigration, MultiBlockPageReencryptionRecovers)
{
    // reencryptPage iterates the page's blocks while incrementing the
    // counter store -- under FlatMap the old CounterBlock must be read
    // through a COPY (the increment can grow the table and invalidate
    // references), and the per-block OTP/MAC work goes through one
    // batched crypto train. Populate several blocks of one page, then
    // overflow the 7-bit minor so the re-encryption loop runs with
    // count > 1, and verify recovery still checks out.
    SecPbSystem sys(smallConfig(Scheme::SecWt, 8));
    ScriptedGenerator gen;
    for (Addr a = 0x040; a <= 0x1C0; a += BlockSize)
        gen.store(a, 0xBEEF + a);
    for (int i = 0; i < 130; ++i)
        gen.store(0x000, static_cast<std::uint64_t>(i));
    sys.run(gen);
    EXPECT_GE(sys.secpb().statPageReencrypts.value(), 1.0);
    EXPECT_GE(sys.counters().counterFor(0x000).major, 1u);
    CrashReport cr = sys.crashNow();
    EXPECT_TRUE(cr.recovered);
    EXPECT_TRUE(cr.recovery.ok());
}

TEST(FlatMigration, Fig6SmokePointIsByteIdentical)
{
    // Golden pin of the heaviest-drain fig6 smoke point (gamess under
    // COBCM, 20k instructions, seed 7): 399 drained entries and 93 root
    // updates exercise the fused drain event, the batched crypto train,
    // walker merging, and every migrated hot table. The values are the
    // pre-migration baseline; ANY timing or functional drift in the
    // flat-layout refactor shows up here as an exact-value mismatch.
    SystemConfig cfg =
        SecPbSystem::configFor(Scheme::Cobcm, profileByName("gamess"));
    cfg.secpb.numEntries = 32;
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profileByName("gamess"), 20'000, 7);
    const SimulationResult r = sys.run(gen);

    EXPECT_EQ(r.execTicks, 12842u);
    EXPECT_EQ(r.instructions, 20'000u);
    EXPECT_EQ(r.persists, 1002u);
    EXPECT_EQ(r.allocations, 431u);
    EXPECT_EQ(r.bmtRootUpdates, 93u);
    EXPECT_EQ(r.pageReencryptions, 0u);
    EXPECT_EQ(r.drainedEntries, 399u);
    EXPECT_EQ(r.sbFullStalls, 365u);
    EXPECT_EQ(r.pbFullRejects, 785u);
    EXPECT_EQ(r.pcmReads, 273u);
    EXPECT_EQ(r.pcmWrites, 395u);
    EXPECT_DOUBLE_EQ(r.ipc, 1.557389814670612);
    EXPECT_DOUBLE_EQ(r.ppti, 50.1);
    EXPECT_DOUBLE_EQ(r.nwpe, 2.355889724310777);
    EXPECT_DOUBLE_EQ(r.ctrCacheHitRate, 0.9553349875930521);
    EXPECT_DOUBLE_EQ(r.bmtCacheHitRate, 0.9093701996927803);
    EXPECT_DOUBLE_EQ(r.meanUnblockLatency, 2.0);
}

TEST(FlatMigration, Fig6EagerPointIsByteIdentical)
{
    // Second pin on the eager CM scheme (no SecPB drain batching in
    // play): separates a regression in the shared metadata path from one
    // in the SecPB-specific fused-drain path.
    SystemConfig cfg =
        SecPbSystem::configFor(Scheme::Cm, profileByName("gamess"));
    cfg.secpb.numEntries = 32;
    SecPbSystem sys(cfg);
    SyntheticGenerator gen(profileByName("gamess"), 20'000, 7);
    const SimulationResult r = sys.run(gen);

    EXPECT_EQ(r.execTicks, 175761u);
    EXPECT_EQ(r.persists, 1002u);
    EXPECT_EQ(r.allocations, 434u);
    EXPECT_EQ(r.bmtRootUpdates, 434u);
    EXPECT_EQ(r.drainedEntries, 416u);
    EXPECT_EQ(r.sbFullStalls, 756u);
    EXPECT_EQ(r.pcmReads, 284u);
    EXPECT_EQ(r.pcmWrites, 416u);
}
