/**
 * @file
 * The experiment engine's determinism contract: a 16-point sweep run at
 * --jobs 1 (inline, no threads) and --jobs 8 (thread pool) produces
 * byte-identical JSON modulo the host wall-clock fields. Also covers
 * submission-order aggregation and the engine's exception path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "exp/report.hh"
#include "exp/sweep.hh"
#include "sim/logging.hh"

using namespace secpb;

namespace
{

/** 4 profiles x 4 schemes = the 16-point cross-product. */
std::vector<ExperimentPoint>
sixteenPoints()
{
    const char *profiles[] = {"gamess", "gcc", "mcf", "lbm"};
    const Scheme schemes[] = {Scheme::Bbb, Scheme::Cobcm, Scheme::Cm,
                              Scheme::NoGap};
    std::vector<ExperimentPoint> points;
    for (const char *prof : profiles) {
        for (Scheme s : schemes) {
            ExperimentPoint p;
            p.label = std::string(prof) + "/" + schemeName(s);
            p.scheme = s;
            p.profile = prof;
            p.instructions = 3000;
            p.seed = 99;
            points.push_back(std::move(p));
        }
    }
    return points;
}

SweepReport
runSweep(unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    SweepReport report;
    report.bench = "determinism_test";
    report.jobs = 0;  // Normalized: the comparison is about results.
    report.points = sixteenPoints();
    report.results = SweepRunner(opts).run(report.points);
    return report;
}

} // namespace

TEST(SweepDeterminism, Jobs1AndJobs8ProduceByteIdenticalJson)
{
    setQuietLogging(true);
    const std::string serial = sweepJsonDeterministic(runSweep(1));
    const std::string parallel = sweepJsonDeterministic(runSweep(8));

    // Byte-identical modulo wall-clock: sweepJsonDeterministic blanks
    // exactly the host_seconds values and nothing else.
    EXPECT_EQ(serial, parallel);

    // Sanity: the projection actually contains measured data.
    EXPECT_NE(serial.find("\"exec_ticks\":"), std::string::npos);
    EXPECT_NE(serial.find("\"label\": \"lbm/nogap\""), std::string::npos);
}

TEST(SweepDeterminism, OnlyHostSecondsAreBlanked)
{
    setQuietLogging(true);
    const SweepReport report = runSweep(2);
    std::ostringstream raw;
    writeSweepJson(raw, report);
    const std::string projected = sweepJsonDeterministic(report);

    // Same line count; lines differ only where host_seconds appears.
    std::istringstream a(raw.str()), b(projected);
    std::string la, lb;
    while (std::getline(a, la)) {
        ASSERT_TRUE(static_cast<bool>(std::getline(b, lb)));
        if (la != lb) {
            EXPECT_NE(la.find("host_seconds"), std::string::npos)
                << "unexpected nondeterministic line: " << la;
        }
    }
    EXPECT_FALSE(static_cast<bool>(std::getline(b, lb)));
}

TEST(SweepRunner, ResultsAggregateInSubmissionOrder)
{
    // Custom points that complete in reverse submission order must still
    // land in submission-order slots.
    std::vector<ExperimentPoint> points;
    for (int i = 0; i < 12; ++i) {
        ExperimentPoint p;
        p.label = "p" + std::to_string(i);
        p.custom = [i](const ExperimentPoint &) {
            ExperimentResult r;
            r.sim.execTicks = static_cast<std::uint64_t>(i);
            return r;
        };
        points.push_back(std::move(p));
    }
    SweepOptions opts;
    opts.jobs = 4;
    opts.progress = false;
    const auto results = SweepRunner(opts).run(points);
    ASSERT_EQ(results.size(), 12u);
    for (std::size_t i = 0; i < results.size(); ++i)
        EXPECT_EQ(results[i].sim.execTicks, i);
}

TEST(SweepRunner, PointExceptionPropagatesAfterSweepCompletes)
{
    std::atomic<int> completed{0};
    std::vector<ExperimentPoint> points;
    for (int i = 0; i < 8; ++i) {
        ExperimentPoint p;
        p.label = "p" + std::to_string(i);
        p.custom = [i, &completed](const ExperimentPoint &) {
            if (i == 3)
                throw std::runtime_error("point 3 exploded");
            ++completed;
            return ExperimentResult{};
        };
        points.push_back(std::move(p));
    }
    SweepOptions opts;
    opts.jobs = 2;
    opts.progress = false;
    EXPECT_THROW(SweepRunner(opts).run(points), std::runtime_error);
    // Every other queued point still ran before the rethrow.
    EXPECT_EQ(completed.load(), 7);
}
