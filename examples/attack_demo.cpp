/**
 * @file
 * Threat-model demonstration: every attack class the paper's security
 * mechanisms exist for, launched against the recovered PM image.
 *
 *  - Spoofing: flip ciphertext bits in the NVDIMM      -> MAC catches it.
 *  - Splicing: swap two blocks' ciphertexts            -> MAC (address-
 *    bound) catches it.
 *  - Counter tampering: bump a counter in PM           -> BMT catches it.
 *  - Full-tuple replay: roll (ct, counter, MAC) back
 *    to an older, mutually-consistent version          -> only the BMT
 *    root register (in the TCB) can and does catch it.
 */

#include <cstdio>

#include "core/simulation.hh"
#include "recovery/verifier.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

/** Run a fresh system, persist some data, crash+drain cleanly. */
void
runAndDrain(SecPbSystem &sys)
{
    ScriptedGenerator gen;
    for (Addr a = 0; a < 32 * BlockSize; a += BlockSize)
        gen.store(a, 0xD00D0000 + a);
    sys.run(gen);
    CrashReport cr = sys.crashNow();
    if (!cr.recovered)
        std::fprintf(stderr, "unexpected: clean drain failed recovery\n");
}

/** A fresh single-core machine through the facade. */
Simulation
makeSim(const SystemConfig &cfg)
{
    SimulationSpec spec;
    spec.base = cfg;
    return Simulation(spec);
}

int failures = 0;

void
report(const char *attack, const RecoveryReport &r, const char *expect)
{
    const bool detected = !r.ok();
    std::printf("  %-18s -> %s (mac=%llu bmt=%llu) %s\n", attack,
                detected ? "DETECTED" : "missed",
                static_cast<unsigned long long>(r.macFailures),
                static_cast<unsigned long long>(r.bmtFailures), expect);
    if (!detected)
        ++failures;
}

} // namespace

int
main()
{
    setQuietLogging(true);
    SystemConfig cfg;
    cfg.scheme = Scheme::Cobcm;

    std::printf("SecPB attack demonstration (scheme %s)\n\n",
                schemeName(cfg.scheme));

    // --- Spoofing -------------------------------------------------------
    {
        Simulation sim = makeSim(cfg);
        SecPbSystem &sys = sim.system();
        runAndDrain(sys);
        sys.pm().tamperData(0x040, 9, 0x80);
        RecoveryVerifier v(sys.layout(), cfg.keys);
        report("spoofing", v.verifyAll(sys.pm(), sys.tree(), sys.oracle()),
               "[expect MAC failure]");
    }

    // --- Splicing --------------------------------------------------------
    {
        Simulation sim = makeSim(cfg);
        SecPbSystem &sys = sim.system();
        runAndDrain(sys);
        const BlockData a = sys.pm().readData(0x000);
        const BlockData b = sys.pm().readData(0x040);
        sys.pm().writeData(0x000, b);
        sys.pm().writeData(0x040, a);
        RecoveryVerifier v(sys.layout(), cfg.keys);
        report("splicing", v.verifyAll(sys.pm(), sys.tree(), sys.oracle()),
               "[expect MAC failures]");
    }

    // --- Counter tampering ------------------------------------------------
    {
        Simulation sim = makeSim(cfg);
        SecPbSystem &sys = sim.system();
        runAndDrain(sys);
        sys.pm().tamperCounter(0, 3);
        RecoveryVerifier v(sys.layout(), cfg.keys);
        report("counter tamper",
               v.verifyAll(sys.pm(), sys.tree(), sys.oracle()),
               "[expect BMT failure]");
    }

    // --- Full-tuple replay -------------------------------------------------
    {
        Simulation sim = makeSim(cfg);
        SecPbSystem &sys = sim.system();
        // Persist version 1 of block 0 and capture its whole tuple.
        ScriptedGenerator gen1;
        gen1.store(0x000, 0x1111);
        sys.run(gen1);
        sys.secpb().drainAll(nullptr);
        sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
        const BlockData old_ct = sys.pm().readData(0x000);
        const CounterBlock old_cb = sys.pm().readCounterBlock(0);
        const MacValue old_mac = sys.pm().readMac(0x000);

        // Persist version 2, then roll PM back to version 1.
        sys.storeBuffer().tryPush(0x000, 0x2222);
        sys.runUntil(sys.eventQueue().curTick() + 1'000'000);
        CrashReport cr = sys.crashNow();
        if (!cr.recovered)
            std::fprintf(stderr, "unexpected recovery failure\n");
        sys.pm().replayTuple(0x000, old_ct, old_cb, old_mac, 0);

        RecoveryVerifier v(sys.layout(), cfg.keys);
        report("tuple replay",
               v.verifyAll(sys.pm(), sys.tree(), sys.oracle()),
               "[expect BMT/plaintext failure: root register is fresh]");
    }

    std::printf("\n%s\n", failures == 0
                ? "all four attack classes detected at recovery"
                : "SOME ATTACKS WENT UNDETECTED");
    return failures == 0 ? 0 : 1;
}
