/**
 * @file
 * Quickstart: build a SecPB system, run a workload, crash it, recover.
 *
 * Demonstrates the three core library operations:
 *  1. assemble a system for a scheme (here COBCM, the paper's best),
 *  2. run a synthetic workload and read out performance statistics,
 *  3. inject a crash, battery-drain the SecPB, and verify that recovery
 *     reproduces the persist oracle with intact integrity metadata.
 */

#include <cinttypes>
#include <cstdio>

#include "core/simulation.hh"
#include "workload/synthetic.hh"

using namespace secpb;

int
main()
{
    setQuietLogging(true);

    // --- 1. Assemble -----------------------------------------------------
    const BenchmarkProfile &profile = profileByName("gamess");
    SimulationSpec spec;
    spec.base = SecPbSystem::configFor(Scheme::Cobcm, profile);
    const SystemConfig &cfg = spec.base;
    Simulation sim(spec);
    SecPbSystem &sys = sim.system();

    std::printf("SecPB quickstart\n");
    std::printf("  scheme          : %s\n", schemeName(cfg.scheme));
    std::printf("  SecPB entries   : %u\n", cfg.secpb.numEntries);
    std::printf("  BMT levels      : %u (+1 leaf hash per update)\n",
                sys.tree().numLevels());

    // --- 2. Run ----------------------------------------------------------
    SyntheticGenerator gen(profile, 200'000, /*seed=*/42);
    SimulationResult r = sys.run(gen);

    std::printf("\nrun of '%s' (%" PRIu64 " instructions)\n",
                profile.name.c_str(), r.instructions);
    std::printf("  exec time       : %" PRIu64 " cycles (IPC %.3f)\n",
                r.execTicks, r.ipc);
    std::printf("  persists        : %" PRIu64 " (PPTI %.1f)\n",
                r.persists, r.ppti);
    std::printf("  NWPE            : %.2f writes/entry\n", r.nwpe);
    std::printf("  BMT root updates: %" PRIu64 "\n", r.bmtRootUpdates);

    // --- 3. Crash + recover ----------------------------------------------
    // A second system, crashed mid-run, to exercise the battery path.
    SecPbSystem crash_sys(cfg);
    SyntheticGenerator gen2(profile, 200'000, /*seed=*/42);
    crash_sys.start(gen2);
    crash_sys.runUntil(50'000);
    CrashReport cr = crash_sys.crashNow();

    std::printf("\ncrash at cycle 50000\n");
    std::printf("  entries drained by battery : %" PRIu64 "\n",
                cr.work.entriesDrained);
    std::printf("  late BMT root updates      : %" PRIu64 "\n",
                cr.work.bmtRootUpdates);
    std::printf("  battery provisioned        : %.3f uJ\n",
                cr.provisionedEnergyJ * 1e6);
    std::printf("  battery actually used      : %.3f uJ\n",
                cr.actualEnergyJ * 1e6);
    std::printf("  observer-blocked window    : %" PRIu64 " cycles "
                "(%.0f ns)\n", cr.drainLatency, cr.drainLatencyNs);
    std::printf("  blocks verified at recovery: %" PRIu64 "\n",
                cr.recovery.blocksChecked);
    std::printf("  recovery                   : %s\n",
                cr.recovered ? "OK (plaintext + MAC + BMT all verified)"
                             : "FAILED");

    return cr.recovered ? 0 : 1;
}
