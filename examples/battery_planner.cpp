/**
 * @file
 * Battery planner: pick the best secure-persistency scheme for a given
 * supercapacitor/battery budget.
 *
 * The paper's conclusion (Section VI-C) frames SecPB as a trade-off
 * spectrum: lazier schemes are faster but need bigger batteries. This
 * tool makes that actionable: given a budget in mm^3 and a target
 * workload, it sweeps the spectrum, sizes each scheme's battery, measures
 * its slowdown on the workload, and recommends the fastest scheme that
 * fits -- optionally pairing eager schemes with BMF height reduction, the
 * paper's suggestion for budget-constrained designs.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulation.hh"
#include "energy/energy_model.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

struct Candidate
{
    const char *name;
    Scheme scheme;
    BmfMode bmf;
};

double
slowdownOn(const BenchmarkProfile &profile, Scheme scheme, BmfMode bmf,
           std::uint64_t instr)
{
    SimulationSpec base_spec;
    base_spec.base = SecPbSystem::configFor(Scheme::Bbb, profile);
    base_spec.instructions = instr;
    base_spec.seed = 11;
    Simulation base(base_spec);
    SyntheticGenerator base_gen(profile, instr, 11);
    const double base_ticks =
        static_cast<double>(base.run(base_gen).execTicks);

    SimulationSpec spec;
    spec.base = SecPbSystem::configFor(scheme, profile);
    spec.base.walker.bmfMode = bmf;
    spec.instructions = instr;
    spec.seed = 11;
    Simulation sim(spec);
    SyntheticGenerator gen(profile, instr, 11);
    return sim.run(gen).execTicks / base_ticks;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);

    double budget_mm3 = 2.0;      // default supercap budget
    std::string bench = "gcc";
    std::uint64_t instr = 60'000;
    for (int i = 1; i + 1 < argc + 0; i += 2) {
        if (!std::strcmp(argv[i], "--budget"))
            budget_mm3 = std::atof(argv[i + 1]);
        else if (!std::strcmp(argv[i], "--bench"))
            bench = argv[i + 1];
        else if (!std::strcmp(argv[i], "--instr"))
            instr = std::strtoull(argv[i + 1], nullptr, 10);
    }

    const EnergyModel em(EnergyCosts{}, 8);
    const BenchmarkProfile &profile = profileByName(bench);

    const Candidate candidates[] = {
        {"COBCM", Scheme::Cobcm, BmfMode::None},
        {"OBCM", Scheme::Obcm, BmfMode::None},
        {"BCM", Scheme::Bcm, BmfMode::None},
        {"CM", Scheme::Cm, BmfMode::None},
        {"CM+DBMF", Scheme::Cm, BmfMode::Dbmf},
        {"CM+SBMF", Scheme::Cm, BmfMode::Sbmf},
        {"M", Scheme::M, BmfMode::None},
        {"NoGap", Scheme::NoGap, BmfMode::None},
    };

    std::printf("Battery planner: workload '%s', SuperCap budget "
                "%.2f mm^3, 32-entry SecPB\n\n",
                bench.c_str(), budget_mm3);
    std::printf("%-10s %14s %10s %10s %8s\n", "scheme", "battery mm^3",
                "fits?", "slowdown", "pick");

    const Candidate *best = nullptr;
    double best_slowdown = 1e99;
    std::vector<double> slowdowns;
    for (const Candidate &c : candidates) {
        const double volume =
            em.size(em.secPbBatteryEnergy(c.scheme, 32), superCapTech())
                .volumeMm3;
        const bool fits = volume <= budget_mm3;
        const double slow = slowdownOn(profile, c.scheme, c.bmf, instr);
        slowdowns.push_back(slow);
        if (fits && slow < best_slowdown) {
            best = &c;
            best_slowdown = slow;
        }
        std::printf("%-10s %14.3f %10s %9.3fx\n", c.name, volume,
                    fits ? "yes" : "no", slow);
    }

    if (best) {
        std::printf("\nrecommendation: %s (%.1f%% overhead) -- fastest "
                    "scheme within the %.2f mm^3 budget\n",
                    best->name, (best_slowdown - 1.0) * 100.0, budget_mm3);
    } else {
        std::printf("\nno SecPB scheme fits %.2f mm^3; NoGap needs the "
                    "least battery\n", budget_mm3);
    }
    return 0;
}
