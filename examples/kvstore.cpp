/**
 * @file
 * A crash-consistent key-value store on secure persistent memory.
 *
 * The motivating scenario for persistent hierarchies: with the SecPB,
 * every store is durable the moment it retires -- no clwb/fence pairs --
 * so a write-ahead-logged KV store is just "append log record, write
 * bucket". Strict persistency then guarantees log-before-data ordering.
 *
 * This example:
 *  1. performs a series of put() operations through the simulated system
 *     under COBCM;
 *  2. crashes the machine mid-workload and battery-drains the SecPB;
 *  3. recovers by DECRYPTING the PM image (counters fetched from PM, pads
 *     regenerated, MACs and the BMT root verified) and parsing the
 *     application's own layout out of the recovered plaintext;
 *  4. checks the log-before-data invariant: every recovered bucket entry
 *     must be covered by a recovered log record.
 */

#include <cinttypes>
#include <cstdio>
#include <map>

#include "core/simulation.hh"
#include "recovery/verifier.hh"
#include "workload/scripted.hh"

using namespace secpb;

namespace
{

/** Application PM layout: a log region and a bucket array. */
constexpr Addr LogBase = 0x0000;
constexpr Addr BucketBase = 0x100000;  // 1 MB up
constexpr unsigned NumBuckets = 1024;

/** One log record: (key, value) in two adjacent 8-byte words. */
struct KvTrace
{
    ScriptedGenerator gen;
    Addr logCursor = LogBase;

    void
    put(std::uint64_t key, std::uint64_t value)
    {
        // Write-ahead: log record first...
        gen.store(logCursor, key);
        gen.store(logCursor + 8, value);
        logCursor += 16;
        // ...then the in-place bucket update.
        const Addr slot = BucketBase + (key % NumBuckets) * 8;
        gen.store(slot, value);
        // A little compute between operations.
        gen.instr(40);
    }
};

/** Decrypt one PM block the way the recovery firmware would. */
BlockData
recoverBlock(SecPbSystem &sys, Addr addr)
{
    const auto &layout = sys.layout();
    const CounterBlock cb =
        sys.pm().readCounterBlock(layout.pageIndex(addr));
    const BlockCounter ctr = cb.counterFor(layout.blockInPage(addr));
    const BlockData pad =
        generatePad(sys.config().keys, blockAlign(addr), ctr);
    return decryptBlock(sys.pm().readData(addr), pad);
}

} // namespace

int
main()
{
    setQuietLogging(true);

    SimulationSpec spec;
    spec.base.scheme = Scheme::Cobcm;
    const SystemConfig &cfg = spec.base;
    Simulation sim(spec);
    SecPbSystem &sys = sim.system();

    // --- 1. Run a put() workload and crash it mid-way ------------------
    KvTrace trace;
    std::map<std::uint64_t, std::uint64_t> intended;
    for (std::uint64_t i = 1; i <= 500; ++i) {
        const std::uint64_t key = 7919 * i % 2048;
        const std::uint64_t value = 0xFACE0000 + i;
        trace.put(key, value);
        intended[key] = value;
    }

    sys.start(trace.gen);
    sys.runUntil(2'500);  // crash mid-workload
    CrashReport cr = sys.crashNow();
    std::printf("kvstore: crash at cycle 2500 under %s\n",
                schemeName(cfg.scheme));
    std::printf("  battery drained %" PRIu64 " SecPB entries "
                "(%.2f uJ of %.2f uJ provisioned)\n",
                cr.work.entriesDrained, cr.actualEnergyJ * 1e6,
                cr.provisionedEnergyJ * 1e6);
    std::printf("  integrity at recovery: %s\n",
                cr.recovered ? "verified" : "FAILED");
    if (!cr.recovered)
        return 1;

    // --- 2. Parse the recovered log ------------------------------------
    std::map<std::uint64_t, std::uint64_t> logged;  // last logged value
    std::uint64_t log_records = 0;
    for (Addr rec = LogBase; rec < trace.logCursor; rec += 16) {
        if (!sys.oracle().touched(rec))
            break;  // persistence stopped here
        const BlockData block = recoverBlock(sys, rec);
        const std::uint64_t key = blockWord(block, blockOffset(rec) / 8);
        const Addr vaddr = rec + 8;
        const BlockData vblock = recoverBlock(sys, vaddr);
        const std::uint64_t value =
            blockWord(vblock, blockOffset(vaddr) / 8);
        if (key == 0 && value == 0)
            break;  // tail not persisted
        logged[key] = value;
        ++log_records;
    }

    // --- 3. Check the log-before-data invariant ------------------------
    // Any bucket value visible after recovery must appear in the log:
    // strict persistency ordered the log append before the bucket write.
    std::uint64_t buckets_checked = 0, violations = 0;
    for (unsigned b = 0; b < NumBuckets; ++b) {
        const Addr slot = BucketBase + b * 8;
        if (!sys.oracle().touched(slot))
            continue;
        const BlockData block = recoverBlock(sys, slot);
        const std::uint64_t value =
            blockWord(block, blockOffset(slot) / 8);
        if (value == 0)
            continue;
        ++buckets_checked;
        bool in_log = false;
        for (const auto &kv : logged)
            if (kv.second == value)
                in_log = true;
        if (!in_log)
            ++violations;
    }

    std::printf("\nrecovered state:\n");
    std::printf("  log records persisted : %" PRIu64 " of 500\n",
                log_records);
    std::printf("  bucket slots recovered: %" PRIu64 "\n", buckets_checked);
    std::printf("  log-before-data violations: %" PRIu64 " %s\n",
                violations, violations == 0 ? "(invariant holds)" : "!!");

    return violations == 0 ? 0 : 1;
}
