/**
 * @file
 * secpb_sim -- the command-line simulator driver.
 *
 * Runs one (scheme, benchmark) point and prints the result summary, the
 * full statistics tree, or CSV. This is the tool for exploring the
 * design space beyond the canned table/figure harnesses.
 *
 * Usage:
 *   secpb_sim [--scheme cobcm] [--bench gamess|all] [--instr N]
 *             [--entries N] [--bmf none|dbmf|sbmf] [--seed N]
 *             [--stats] [--csv] [--crash TICK] [--list]
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/simulation.hh"
#include "workload/synthetic.hh"

using namespace secpb;

namespace
{

struct Options
{
    std::string scheme = "cobcm";
    std::string bench = "gamess";
    std::uint64_t instr = 300'000;
    unsigned entries = 32;
    std::string bmf = "none";
    std::uint64_t seed = 7;
    bool dumpStats = false;
    bool csv = false;
    Tick crashAt = 0;
    bool list = false;
};

BmfMode
parseBmf(const std::string &s)
{
    if (s == "none")
        return BmfMode::None;
    if (s == "dbmf")
        return BmfMode::Dbmf;
    if (s == "sbmf")
        return BmfMode::Sbmf;
    fatal("unknown BMF mode '%s' (none|dbmf|sbmf)", s.c_str());
}

void
printResult(const Options &opt, const std::string &bench,
            const SimulationResult &r)
{
    if (opt.csv) {
        std::printf("%s,%s,%" PRIu64 ",%" PRIu64 ",%.4f,%.2f,%.2f,"
                    "%" PRIu64 ",%" PRIu64 "\n",
                    opt.scheme.c_str(), bench.c_str(), r.instructions,
                    r.execTicks, r.ipc, r.ppti, r.nwpe, r.bmtRootUpdates,
                    r.pcmWrites);
        return;
    }
    std::printf("%-12s %-8s: %10" PRIu64 " cycles  IPC %.3f  PPTI %.1f  "
                "NWPE %.2f  BMT updates %" PRIu64 "\n",
                bench.c_str(), opt.scheme.c_str(), r.execTicks, r.ipc,
                r.ppti, r.nwpe, r.bmtRootUpdates);
}

int
runOne(const Options &opt, const std::string &bench)
{
    const BenchmarkProfile &profile = profileByName(bench);
    SchemeParams params;
    SimulationSpec spec;
    spec.base = SecPbSystem::configFor(
        parseSchemeSpec(opt.scheme, &params), profile);
    spec.base.secpb.params = params;
    spec.base.secpb.numEntries = opt.entries;
    spec.base.walker.bmfMode = parseBmf(opt.bmf);
    spec.instructions = opt.instr;
    spec.seed = opt.seed;
    Simulation sim(spec);
    SecPbSystem &sys = sim.system();
    SyntheticGenerator gen(profile, opt.instr, opt.seed);

    if (opt.crashAt > 0) {
        sys.start(gen);
        sys.runUntil(opt.crashAt);
        CrashReport cr = sys.crashNow();
        std::printf("crash @ %" PRIu64 ": drained %" PRIu64 " entries, "
                    "%.2f uJ used / %.2f uJ provisioned, recovery %s\n",
                    static_cast<std::uint64_t>(opt.crashAt),
                    cr.work.entriesDrained, cr.actualEnergyJ * 1e6,
                    cr.provisionedEnergyJ * 1e6,
                    cr.recovered ? "OK" : "FAILED");
        return cr.recovered ? 0 : 1;
    }

    SimulationResult r = sys.run(gen);
    printResult(opt, bench, r);
    if (opt.dumpStats)
        sys.dumpStats(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuietLogging(true);
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (!std::strcmp(argv[i], "--scheme"))
            opt.scheme = need("--scheme");
        else if (!std::strcmp(argv[i], "--bench"))
            opt.bench = need("--bench");
        else if (!std::strcmp(argv[i], "--instr"))
            opt.instr = std::strtoull(need("--instr"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--entries"))
            opt.entries = static_cast<unsigned>(
                std::strtoul(need("--entries"), nullptr, 10));
        else if (!std::strcmp(argv[i], "--bmf"))
            opt.bmf = need("--bmf");
        else if (!std::strcmp(argv[i], "--seed"))
            opt.seed = std::strtoull(need("--seed"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--stats"))
            opt.dumpStats = true;
        else if (!std::strcmp(argv[i], "--csv"))
            opt.csv = true;
        else if (!std::strcmp(argv[i], "--crash"))
            opt.crashAt = std::strtoull(need("--crash"), nullptr, 10);
        else if (!std::strcmp(argv[i], "--list"))
            opt.list = true;
        else
            fatal("unknown flag '%s'", argv[i]);
    }

    if (opt.list) {
        std::printf("benchmarks:");
        for (const auto &p : spec2006Profiles())
            std::printf(" %s", p.name.c_str());
        std::printf("\nschemes: %s\n", allSchemeNames().c_str());
        return 0;
    }

    if (opt.csv)
        std::printf("scheme,bench,instructions,cycles,ipc,ppti,nwpe,"
                    "bmt_updates,pcm_writes\n");

    if (opt.bench == "all") {
        int rc = 0;
        for (const auto &p : spec2006Profiles())
            rc |= runOne(opt, p.name);
        return rc;
    }
    return runOne(opt, opt.bench);
}
